// Connected components of a CsrGraph (or a filtered edge subset).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

struct Components {
  std::vector<NodeId> label;        // component id per vertex, dense [0, count)
  std::vector<std::uint32_t> size;  // size per component id
  NodeId count = 0;

  /// Id of the largest component (count must be > 0).
  [[nodiscard]] NodeId largest() const;
  [[nodiscard]] std::uint32_t largest_size() const;
};

/// Components of the full graph.
[[nodiscard]] Components connected_components(const CsrGraph& g);

/// Components where edge (u, v) participates iff edge_ok(u, v).
[[nodiscard]] Components connected_components_filtered(
    const CsrGraph& g, const std::function<bool(NodeId, NodeId)>& edge_ok);

/// Vertex ids of the largest connected component, sorted ascending.
[[nodiscard]] std::vector<NodeId> largest_component_vertices(const CsrGraph& g);

}  // namespace bsr::graph
