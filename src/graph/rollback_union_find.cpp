#include "graph/rollback_union_find.hpp"

#include <algorithm>
#include <numeric>

namespace bsr::graph {

void RollbackUnionFind::reset(NodeId n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
  size_.assign(n, 1);
  log_.clear();
  num_components_ = n;
  connected_pairs_ = 0;
}

std::uint32_t RollbackUnionFind::largest_component_size() const noexcept {
  std::uint32_t best = parent_.empty() ? 0u : 1u;
  for (NodeId v = 0; v < parent_.size(); ++v) {
    if (parent_[v] == v) best = std::max(best, size_[v]);
  }
  return best;
}

}  // namespace bsr::graph
