#include "topology/caida_import.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph_builder.hpp"

namespace bsr::topology {

using bsr::graph::Edge;
using bsr::graph::NodeId;

namespace {

struct RawEdge {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  int rel = 0;  // -1 = a provides b, 0 = peer
};

std::vector<RawEdge> parse_as_rel(std::istream& is,
                                  std::map<std::uint64_t, NodeId>& id_map) {
  std::vector<RawEdge> edges;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::replace(line.begin(), line.end(), '|', ' ');
    std::istringstream ls(line);
    RawEdge e;
    if (!(ls >> e.a >> e.b >> e.rel)) {
      throw std::runtime_error("import_caida: line " + std::to_string(line_no) +
                               ": expected <as>|<as>|<rel>");
    }
    if (e.rel != -1 && e.rel != 0) {
      throw std::runtime_error("import_caida: line " + std::to_string(line_no) +
                               ": relationship must be -1 or 0");
    }
    if (e.a == e.b) continue;
    edges.push_back(e);
    id_map.emplace(e.a, 0);
    id_map.emplace(e.b, 0);
  }
  return edges;
}

/// Provider-depth peel for tier labels: ASes with no providers are tier 1,
/// their direct customers tier 2, then tier 3; everything deeper is a stub.
std::vector<Tier> infer_tiers(NodeId n_as, const std::vector<RawEdge>& edges,
                              const std::map<std::uint64_t, NodeId>& id_map) {
  std::vector<std::vector<NodeId>> customers(n_as);
  std::vector<std::uint32_t> provider_count(n_as, 0);
  for (const RawEdge& e : edges) {
    if (e.rel != -1) continue;
    const NodeId provider = id_map.at(e.a);
    const NodeId customer = id_map.at(e.b);
    customers[provider].push_back(customer);
    ++provider_count[customer];
  }
  std::vector<std::uint32_t> depth(n_as, bsr::graph::kUnreachable);
  std::vector<NodeId> queue;
  for (NodeId v = 0; v < n_as; ++v) {
    if (provider_count[v] == 0) {
      depth[v] = 0;
      queue.push_back(v);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId c : customers[u]) {
      if (depth[c] == bsr::graph::kUnreachable) {
        depth[c] = depth[u] + 1;
        queue.push_back(c);
      }
    }
  }
  std::vector<Tier> tiers(n_as, Tier::kStub);
  for (NodeId v = 0; v < n_as; ++v) {
    // Only transit ASes (with customers) get tier-1..3 labels.
    if (customers[v].empty()) continue;
    if (depth[v] == 0) tiers[v] = Tier::kTier1;
    else if (depth[v] == 1) tiers[v] = Tier::kTier2;
    else tiers[v] = Tier::kTier3;
  }
  return tiers;
}

}  // namespace

InternetTopology import_caida_as_rel(std::istream& as_rel) {
  std::istringstream empty;
  return import_caida_as_rel(as_rel, empty);
}

InternetTopology import_caida_as_rel(std::istream& as_rel, std::istream& ixp_members) {
  std::map<std::uint64_t, NodeId> id_map;
  const auto edges = parse_as_rel(as_rel, id_map);
  if (edges.empty()) throw std::runtime_error("import_caida: no edges");
  NodeId next = 0;
  for (auto& [raw, dense] : id_map) dense = next++;
  const NodeId n_as = next;

  // IXP membership lines: "<ixp-name> <as> <as> ..."
  std::vector<std::vector<NodeId>> ixps;
  {
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(ixp_members, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string name;
      if (!(ls >> name)) continue;
      std::vector<NodeId> members;
      std::uint64_t as_number = 0;
      while (ls >> as_number) {
        const auto it = id_map.find(as_number);
        if (it != id_map.end()) members.push_back(it->second);
        // Unknown AS numbers (not in the as-rel file) are skipped: the
        // membership data routinely covers more ASes than the BGP view.
      }
      if (members.size() >= 2) ixps.push_back(std::move(members));
    }
  }
  const auto n_ixp = static_cast<NodeId>(ixps.size());

  bsr::graph::GraphBuilder builder(n_as + n_ixp);
  std::vector<Edge> canonical;
  std::vector<EdgeRel> rels;
  const auto add = [&](NodeId u, NodeId v, EdgeRel rel_u_provider) {
    if (u == v) return;
    NodeId a = u, b = v;
    EdgeRel rel = rel_u_provider;
    if (a > b) {
      std::swap(a, b);
      if (rel == EdgeRel::kUProviderOfV) rel = EdgeRel::kVProviderOfU;
      else if (rel == EdgeRel::kVProviderOfU) rel = EdgeRel::kUProviderOfV;
    }
    builder.add_edge(a, b);
    canonical.push_back(Edge{a, b});
    rels.push_back(rel);
  };
  for (const RawEdge& e : edges) {
    add(id_map.at(e.a), id_map.at(e.b),
        e.rel == -1 ? EdgeRel::kUProviderOfV : EdgeRel::kPeer);
  }
  for (NodeId i = 0; i < n_ixp; ++i) {
    for (const NodeId m : ixps[i]) add(n_as + i, m, EdgeRel::kPeer);
  }

  InternetTopology topo;
  topo.graph = builder.build();
  topo.num_ases = n_as;
  topo.num_ixps = n_ixp;

  // Deduplicate the (edge, rel) pairs against the built graph: keep the
  // first occurrence of each canonical edge.
  {
    std::vector<std::size_t> order(canonical.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return canonical[x] < canonical[y];
    });
    std::vector<Edge> unique_edges;
    std::vector<EdgeRel> unique_rels;
    unique_edges.reserve(topo.graph.num_edges());
    for (const std::size_t idx : order) {
      if (!unique_edges.empty() && unique_edges.back() == canonical[idx]) continue;
      unique_edges.push_back(canonical[idx]);
      unique_rels.push_back(rels[idx]);
    }
    topo.relations = EdgeRelations(topo.graph, unique_edges, unique_rels);
  }

  const auto tiers = infer_tiers(n_as, edges, id_map);
  topo.meta.resize(topo.num_vertices());
  for (NodeId v = 0; v < n_as; ++v) {
    const bool transit = tiers[v] != Tier::kStub;
    topo.meta[v] = NodeMeta{
        transit ? NodeType::kTransitAccess : NodeType::kEnterprise, tiers[v]};
  }
  for (NodeId v = n_as; v < topo.num_vertices(); ++v) {
    topo.meta[v] = NodeMeta{NodeType::kIxp, Tier::kTierNone};
  }
  return topo;
}

InternetTopology import_caida_files(const std::string& as_rel_path,
                                    const std::string& ixp_path) {
  std::ifstream as_rel(as_rel_path);
  if (!as_rel) {
    throw std::runtime_error("import_caida_files: cannot open " + as_rel_path);
  }
  if (ixp_path.empty()) {
    return import_caida_as_rel(as_rel);
  }
  std::ifstream ixp(ixp_path);
  if (!ixp) throw std::runtime_error("import_caida_files: cannot open " + ixp_path);
  return import_caida_as_rel(as_rel, ixp);
}

}  // namespace bsr::topology
