// Reproduces Fig. 5b — connectivity recovered by making a fraction of
// inter-broker connections bidirectional.
//
// Paper: under real (directional) business relationships the broker sets
// lose connectivity sharply, but converting only 30 % of inter-broker links
// to bidirectional peering recovers 72.5 % (1,000 brokers) / 84.68 %
// (3,540-alliance) E2E connectivity. We evaluate valley-free reachability
// over the dominated subgraph with a deterministic random subset of
// inter-broker edges exempted from policy.
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "graph/bfs.hpp"
#include "graph/sampling.hpp"
#include "broker/maxsg.hpp"
#include "io/csv.hpp"
#include "topology/relationships.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::graph::NodeId;

/// Fraction of ordered pairs reachable from sampled sources via dominated,
/// policy-compliant (valley-free + overrides) paths.
double policy_connectivity(const bsr::bench::BenchContext& ctx, const BrokerSet& b,
                           double bidirectional_fraction, std::size_t sources,
                           std::uint64_t seed) {
  const auto& g = ctx.topo.graph;
  const auto filter = bsr::broker::dominated_edge_filter(b);
  const auto override_edge = [&b, bidirectional_fraction, seed](NodeId u, NodeId v) {
    if (!b.contains(u) || !b.contains(v)) return false;
    if (u > v) std::swap(u, v);
    // Deterministic per-edge coin flip: hash(edge, seed) < fraction.
    std::uint64_t state = seed ^ ((static_cast<std::uint64_t>(u) << 32) | v);
    const double coin =
        static_cast<double>(bsr::graph::splitmix64(state) >> 11) * 0x1.0p-53;
    return coin < bidirectional_fraction;
  };

  bsr::graph::Rng rng(seed + 17);
  const auto source_ids = bsr::graph::sample_distinct(
      rng, g.num_vertices(),
      static_cast<NodeId>(std::min<std::size_t>(sources, g.num_vertices())));
  std::uint64_t reached = 0;
  for (const NodeId src : source_ids) {
    const auto dist = bsr::topology::valley_free_distances(
        g, ctx.topo.relations, src, filter, override_edge);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      if (v != src && dist[v] != bsr::graph::kUnreachable) ++reached;
    }
  }
  return static_cast<double>(reached) /
         (static_cast<double>(source_ids.size()) * (g.num_vertices() - 1));
}

}  // namespace

int main() {
  auto ctx = bsr::bench::make_context(
      "Fig. 5b: connectivity vs bidirectional inter-broker fraction");
  const auto& g = ctx.topo.graph;
  const std::size_t sources = std::min<std::size_t>(ctx.env.bfs_sources, 48);

  const auto k1000 = bsr::broker::maxsg(g, ctx.env.scaled(1000, 8)).brokers;
  const auto alliance = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;
  std::cout << "broker sets: " << k1000.size() << " and " << alliance.size()
            << " members; " << sources << " valley-free BFS sources per point\n";

  bsr::io::Table table({"bidirectional fraction", "1000-broker set",
                        std::to_string(alliance.size()) + "-alliance"});
  bsr::io::CsvWriter csv({"fraction", "set", "connectivity"});
  bsr::bench::Stopwatch sw;
  for (const double f : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0}) {
    const double small = policy_connectivity(ctx, k1000, f, sources, ctx.env.seed);
    const double large = policy_connectivity(ctx, alliance, f, sources, ctx.env.seed);
    table.row().cell(bsr::io::format_double(f, 2)).percent(small).percent(large);
    csv.add_row({bsr::io::format_double(f, 2), "k1000",
                 bsr::io::format_double(small, 6)});
    csv.add_row({bsr::io::format_double(f, 2), "alliance",
                 bsr::io::format_double(large, 6)});
  }
  table.print(std::cout);
  csv.write_file("fig5b_bidirectional_rewiring.csv");
  std::cout << "done in " << bsr::io::format_double(sw.seconds(), 1)
            << "s; series in fig5b_bidirectional_rewiring.csv\n"
            << "(paper anchors at fraction 0.3: 72.5% for 1,000 brokers, "
               "84.68% for the alliance)\n";
  return 0;
}
