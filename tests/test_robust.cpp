#include "broker/robust.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "broker/maxsg.hpp"
#include "broker/verify.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::FailureGroup;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_star;

std::vector<FailureGroup> incident_groups(const CsrGraph& g,
                                          std::initializer_list<NodeId> centers) {
  std::vector<FailureGroup> groups;
  for (const NodeId v : centers) groups.push_back(bsr::graph::incident_group(g, v));
  return groups;
}

// --- incremental evaluator vs brute-force DFS ------------------------------

TEST(WorstCaseSurviving, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CsrGraph g = make_connected_random(12, 0.25, seed);
    const auto b = maxsg(g, 5).brokers;
    for (const std::uint32_t r : {1u, 2u}) {
      EXPECT_EQ(worst_case_surviving_pairs(g, b, r),
                brute_force_surviving_pairs(g, b, r))
          << "seed=" << seed << " r=" << r;
    }
  }
}

TEST(WorstCaseSurviving, GroupOverloadMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const CsrGraph g = make_connected_random(14, 0.2, seed);
    const auto b = maxsg(g, 5).brokers;
    const auto groups = incident_groups(g, {0, 3, 7, 11});
    EXPECT_EQ(worst_case_surviving_pairs(
                  g, b, std::span<const FailureGroup>(groups)),
              brute_force_group_surviving_pairs(g, b, groups))
        << "seed=" << seed;
  }
}

TEST(WorstCaseSurviving, ZeroWhenAdversaryCanEraseTheSet) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(0);
  // |B| <= r: every scenario removes the whole set, nothing survives.
  EXPECT_EQ(worst_case_surviving_pairs(g, b, 1), 0u);
  EXPECT_EQ(brute_force_surviving_pairs(g, b, 1), 0u);
}

TEST(WorstCaseSurviving, StarHubIsASinglePointOfFailure) {
  // Brokers {hub, leaf}: killing the hub leaves the leaf's star = its own
  // adjacency {leaf, 0-edge...}; killing the leaf keeps the full star. The
  // worst case is the hub death: G_{leaf} covers edge {0, leaf} only -> 1 pair.
  const CsrGraph g = make_star(6);
  BrokerSet b(6);
  b.add(0);
  b.add(1);
  EXPECT_EQ(worst_case_surviving_pairs(g, b, 1), 1u);
  EXPECT_EQ(brute_force_surviving_pairs(g, b, 1), 1u);
}

// --- greedy selection -------------------------------------------------------

TEST(RobustMaxsg, ReportedSurvivalIsExactOnTinyGraphs) {
  // The r-survivability claim of the greedy output is confirmed by the
  // independent exhaustive checker for r in {1, 2} and in group mode.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CsrGraph g = make_connected_random(12, 0.25, seed);
    for (const std::uint32_t r : {1u, 2u}) {
      RobustOptions opts;
      opts.redundancy = r;
      const auto result = robust_maxsg(g, 5, opts);
      EXPECT_LE(result.brokers.size(), 5u);
      EXPECT_EQ(result.surviving_pairs,
                brute_force_surviving_pairs(g, result.brokers, r))
          << "seed=" << seed << " r=" << r;
      ASSERT_EQ(result.surviving_curve.size(), result.brokers.size());
      EXPECT_EQ(result.surviving_curve.back(), result.surviving_pairs);
    }
  }
}

TEST(RobustMaxsg, GroupModeReportedSurvivalIsExact) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CsrGraph g = make_connected_random(14, 0.2, seed);
    const auto groups = incident_groups(g, {1, 4, 9});
    RobustOptions opts;
    opts.mode = RobustMode::kFailureGroups;
    opts.groups = groups;
    const auto result = robust_maxsg(g, 4, opts);
    EXPECT_EQ(result.surviving_pairs,
              brute_force_group_surviving_pairs(g, result.brokers, groups))
        << "seed=" << seed;
  }
}

TEST(RobustMaxsg, SurvivingCurveIsNonDecreasing) {
  // Adding a broker can only help: every failure scenario of the larger set
  // dominates a scenario of the smaller one.
  const CsrGraph g = make_connected_random(60, 0.08, 7);
  RobustOptions opts;
  opts.redundancy = 2;
  const auto result = robust_maxsg(g, 10, opts);
  for (std::size_t i = 1; i < result.surviving_curve.size(); ++i) {
    EXPECT_GE(result.surviving_curve[i], result.surviving_curve[i - 1]);
  }
  EXPECT_LE(result.surviving_pairs, result.nominal_pairs);
}

TEST(RobustMaxsg, BeatsPlainGreedyOnTheSurvivingObjective) {
  // The whole point of the criterion: the robust set's worst case is never
  // below the plain set's worst case on the same budget (both are checked
  // against the same exact evaluator, so this is a real dominance claim).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const CsrGraph g = make_connected_random(40, 0.1, seed);
    const auto plain = maxsg(g, 4).brokers;
    RobustOptions opts;
    opts.redundancy = 1;
    const auto robust = robust_maxsg(g, 4, opts);
    EXPECT_GE(robust.surviving_pairs, worst_case_surviving_pairs(g, plain, 1))
        << "seed=" << seed;
  }
}

TEST(RobustMaxsg, PinnedGreedySuboptimalityInstance) {
  // The note paper's caveat (PAPERS.md): greedy redundancy loses the
  // set-cover guarantee because the surviving objective is not submodular.
  // On this 6-vertex graph with k=3, r=1 the greedy's first pick (the hub 3,
  // best worst-case alone) locks it out of the optimum {1, 2, x}-style
  // configurations found by exhaustive search: 2 surviving pairs vs 3.
  GraphBuilder builder(6);
  builder.add_edge(0, 3);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);
  builder.add_edge(3, 5);
  const CsrGraph g = builder.build();
  RobustOptions opts;
  opts.redundancy = 1;
  const auto greedy = robust_maxsg(g, 3, opts);
  const auto optimum = brute_force_robust_optimum(g, 3, 1);
  EXPECT_EQ(greedy.surviving_pairs, 2u);
  EXPECT_EQ(optimum, 3u);
  EXPECT_LT(greedy.surviving_pairs, optimum);
}

TEST(RobustMaxsg, GroupModeAvoidsTheCorrelatedTrap) {
  // Two stars joined by a bridge; every edge of hub A's star belongs to one
  // correlated group (the "IXP outage"). A selection that leans only on hub A
  // loses everything when the group fires — group mode must keep worst-case
  // coverage strictly positive if any budget-2 set can.
  GraphBuilder builder(8);
  for (NodeId v = 1; v <= 3; ++v) builder.add_edge(0, v);  // star A
  for (NodeId v = 5; v <= 7; ++v) builder.add_edge(4, v);  // star B
  builder.add_edge(3, 5);                                  // bridge
  const CsrGraph g = builder.build();
  std::vector<FailureGroup> groups;
  groups.push_back(bsr::graph::incident_group(g, 0));
  RobustOptions opts;
  opts.mode = RobustMode::kFailureGroups;
  opts.groups = groups;
  const auto result = robust_maxsg(g, 2, opts);
  EXPECT_GT(result.surviving_pairs, 0u);
  EXPECT_EQ(result.surviving_pairs,
            brute_force_group_surviving_pairs(g, result.brokers, groups));
}

TEST(RobustMaxsg, DeterministicAcrossThreadCounts) {
  const CsrGraph g = make_connected_random(150, 0.04, 11);
  const auto groups = incident_groups(g, {0, 5, 10, 15, 20});
  const int saved = bsr::graph::engine::num_threads();
  const auto run_both_modes = [&] {
    RobustOptions broker_opts;
    broker_opts.redundancy = 2;
    RobustOptions group_opts;
    group_opts.mode = RobustMode::kFailureGroups;
    group_opts.groups = groups;
    return std::pair{robust_maxsg(g, 8, broker_opts),
                     robust_maxsg(g, 8, group_opts)};
  };
  bsr::graph::engine::set_num_threads(1);
  const auto serial = run_both_modes();
  bsr::graph::engine::set_num_threads(4);
  const auto parallel = run_both_modes();
  bsr::graph::engine::set_num_threads(saved);
  EXPECT_TRUE(std::ranges::equal(serial.first.brokers.members(),
                                 parallel.first.brokers.members()));
  EXPECT_EQ(serial.first.surviving_curve, parallel.first.surviving_curve);
  EXPECT_EQ(serial.first.surviving_pairs, parallel.first.surviving_pairs);
  EXPECT_TRUE(std::ranges::equal(serial.second.brokers.members(),
                                 parallel.second.brokers.members()));
  EXPECT_EQ(serial.second.surviving_curve, parallel.second.surviving_curve);
}

// --- validation -------------------------------------------------------------

TEST(RobustMaxsg, ValidationThrows) {
  const CsrGraph g = make_cycle(6);
  RobustOptions zero_r;
  zero_r.redundancy = 0;
  EXPECT_THROW(robust_maxsg(g, 3, zero_r), std::invalid_argument);
  RobustOptions no_groups;
  no_groups.mode = RobustMode::kFailureGroups;
  EXPECT_THROW(robust_maxsg(g, 3, no_groups), std::invalid_argument);
  const CsrGraph empty = GraphBuilder(0).build();
  EXPECT_THROW(robust_maxsg(empty, 3, RobustOptions{}), std::invalid_argument);
  BrokerSet b(6);
  b.add(0);
  EXPECT_THROW(
      (void)worst_case_surviving_pairs(g, b, std::span<const FailureGroup>{}),
      std::invalid_argument);
  EXPECT_THROW((void)brute_force_group_surviving_pairs(
                   g, b, std::span<const FailureGroup>{}),
               std::invalid_argument);
}

TEST(BruteForce, RefusesSetsTooLargeToEnumerate) {
  const CsrGraph g = bsr::test::make_complete(24);
  BrokerSet b(24);
  for (NodeId v = 0; v < 24; ++v) b.add(v);
  EXPECT_THROW((void)brute_force_surviving_pairs(g, b, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace bsr::broker
