#include "obs/slo.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>

namespace bsr::obs {

namespace {

constexpr std::array<std::string_view, kNumSloObjectives> kObjectiveNames = {
    "fresh_fraction", "refusal_rate", "p99_ticks", "staleness"};

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("slo spec: " + what);
}

void validate_spec(const SloSpec& spec) {
  if (!(spec.window > 0.0)) bad_spec("window must be > 0");
  if (!(spec.long_window >= spec.window)) {
    bad_spec("long_window must be >= window");
  }
  if (!(spec.burn_threshold > 0.0)) bad_spec("burn must be > 0");
  // Range checks keep every burn rate finite: a fresh_min of 1 (or a zero
  // bound) would divide by a zero error budget.
  if (spec.fresh_min >= 0.0 &&
      !(spec.fresh_min > 0.0 && spec.fresh_min < 1.0)) {
    bad_spec("fresh_min must be in (0, 1)");
  }
  if (spec.refusal_max >= 0.0 &&
      !(spec.refusal_max > 0.0 && spec.refusal_max <= 1.0)) {
    bad_spec("refusal_max must be in (0, 1]");
  }
  if (spec.p99_ticks_max >= 0.0 && !(spec.p99_ticks_max >= 1.0)) {
    bad_spec("p99_max must be >= 1");
  }
  if (spec.stale_max >= 0.0 && !(spec.stale_max >= 1.0)) {
    bad_spec("stale_max must be >= 1");
  }
  if (spec.fresh_min < 0.0 && spec.refusal_max < 0.0 &&
      spec.p99_ticks_max < 0.0 && spec.stale_max < 0.0) {
    bad_spec("no objective enabled (set at least one of fresh_min, "
             "refusal_max, p99_max, stale_max)");
  }
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_number(std::string_view key, std::string_view text) {
  const std::string_view value = trimmed(text);
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_spec("malformed number for '" + std::string(key) + "': '" +
             std::string(value) + "'");
  }
  return out;
}

/// Windowed aggregates over [now - w, now] (closed on the right: the sample
/// at `now` always counts).
struct WindowStats {
  std::uint64_t fresh = 0, stale_served = 0, shedded = 0, refused = 0;
  std::uint64_t worst_staleness = 0, worst_p99 = 0;
};

WindowStats accumulate(const std::vector<SloSample>& samples, double now,
                       double window) {
  WindowStats out;
  for (const SloSample& s : samples) {
    if (s.time < now - window) continue;
    out.fresh += s.fresh;
    out.stale_served += s.stale_served;
    out.shedded += s.shedded;
    out.refused += s.refused;
    out.worst_staleness = std::max(out.worst_staleness, s.staleness);
    out.worst_p99 = std::max(out.worst_p99, s.p99_ticks);
  }
  return out;
}

/// Burn rate of one objective over one window's aggregates; 0 when the
/// objective is disabled or the window holds no admitted answers.
double burn_rate(SloObjective objective, const SloSpec& spec,
                 const WindowStats& w) {
  switch (objective) {
    case SloObjective::kFreshFraction: {
      if (spec.fresh_min < 0.0) return 0.0;
      // Shedded answers were never admitted: they spend no freshness budget.
      const double denom =
          static_cast<double>(w.fresh + w.stale_served + w.refused);
      if (denom == 0.0) return 0.0;
      const double bad = denom - static_cast<double>(w.fresh);
      return (bad / denom) / (1.0 - spec.fresh_min);
    }
    case SloObjective::kRefusalRate: {
      if (spec.refusal_max < 0.0) return 0.0;
      const double all = static_cast<double>(w.fresh + w.stale_served +
                                             w.shedded + w.refused);
      if (all == 0.0) return 0.0;
      return (static_cast<double>(w.refused) / all) / spec.refusal_max;
    }
    case SloObjective::kP99Ticks:
      if (spec.p99_ticks_max < 0.0) return 0.0;
      return static_cast<double>(w.worst_p99) / spec.p99_ticks_max;
    case SloObjective::kStaleness:
      if (spec.stale_max < 0.0) return 0.0;
      return static_cast<double>(w.worst_staleness) / spec.stale_max;
    case SloObjective::kCount:
      break;
  }
  return 0.0;
}

double objective_target(SloObjective objective, const SloSpec& spec) {
  switch (objective) {
    case SloObjective::kFreshFraction:
      return spec.fresh_min;
    case SloObjective::kRefusalRate:
      return spec.refusal_max;
    case SloObjective::kP99Ticks:
      return spec.p99_ticks_max;
    case SloObjective::kStaleness:
      return spec.stale_max;
    case SloObjective::kCount:
      break;
  }
  return -1.0;
}

}  // namespace

std::string_view name(SloObjective o) noexcept {
  return kObjectiveNames[static_cast<std::size_t>(o)];
}

SloSpec parse_slo_spec(std::string_view text) {
  SloSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find_first_of(",;", pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view token = trimmed(text.substr(pos, end - pos));
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      bad_spec("expected key=value, got '" + std::string(token) + "'");
    }
    const std::string_view key = trimmed(token.substr(0, eq));
    const double value = parse_number(key, token.substr(eq + 1));
    if (key == "fresh_min") {
      spec.fresh_min = value;
    } else if (key == "refusal_max") {
      spec.refusal_max = value;
    } else if (key == "p99_max") {
      spec.p99_ticks_max = value;
    } else if (key == "stale_max") {
      spec.stale_max = value;
    } else if (key == "window") {
      spec.window = value;
    } else if (key == "long_window") {
      spec.long_window = value;
    } else if (key == "burn") {
      spec.burn_threshold = value;
    } else {
      bad_spec("unknown key '" + std::string(key) + "'");
    }
  }
  validate_spec(spec);
  return spec;
}

SloMonitor::SloMonitor(const SloSpec& spec) : spec_(spec) {
  validate_spec(spec_);
  report_.spec = spec_;
  for (std::size_t i = 0; i < kNumSloObjectives; ++i) {
    const SloObjective o = static_cast<SloObjective>(i);
    report_.objectives[i].name = name(o);
    report_.objectives[i].target = objective_target(o, spec_);
    report_.objectives[i].enabled = report_.objectives[i].target >= 0.0;
  }
}

void SloMonitor::observe(const SloSample& sample) {
  if (saw_sample_ && sample.time < last_time_) {
    throw std::invalid_argument(
        "SloMonitor::observe: samples must arrive in time order");
  }
  saw_sample_ = true;
  last_time_ = sample.time;
  window_.push_back(sample);
  // Prune to the trailing long window (closed on the right edge).
  std::size_t keep_from = 0;
  while (keep_from < window_.size() &&
         window_[keep_from].time < sample.time - spec_.long_window) {
    ++keep_from;
  }
  if (keep_from > 0) {
    window_.erase(window_.begin(),
                  window_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  }

  const WindowStats short_w = accumulate(window_, sample.time, spec_.window);
  const WindowStats long_w =
      accumulate(window_, sample.time, spec_.long_window);

  std::uint64_t breach_mask = 0;
  double worst_burn = 0.0;
  for (std::size_t i = 0; i < kNumSloObjectives; ++i) {
    SloObjectiveReport& obj = report_.objectives[i];
    if (!obj.enabled) continue;
    const SloObjective o = static_cast<SloObjective>(i);
    const double short_burn = burn_rate(o, spec_, short_w);
    const double long_burn = burn_rate(o, spec_, long_w);
    obj.worst_short_burn = std::max(obj.worst_short_burn, short_burn);
    obj.worst_long_burn = std::max(obj.worst_long_burn, long_burn);
    worst_burn = std::max(worst_burn, std::min(short_burn, long_burn));
    // Multi-window gate: breach only when the short window shows the
    // current pain AND the long window shows it is sustained.
    if (short_burn >= spec_.burn_threshold &&
        long_burn >= spec_.burn_threshold) {
      breach_mask |= std::uint64_t{1} << i;
      ++obj.breach_samples;
      if (obj.first_breach_time < 0.0) obj.first_breach_time = sample.time;
    }
  }

  ++report_.samples;
  BSR_COUNT(SloEvaluations);
  BSR_GAUGE_MAX(SloWorstBurnPct,
                static_cast<std::uint64_t>(std::llround(worst_burn * 100.0)));
  const std::uint64_t burn_pct =
      static_cast<std::uint64_t>(std::llround(worst_burn * 100.0));
  if (breach_mask != 0 && !report_.in_breach) {
    report_.in_breach = true;
    ++report_.breaches;
    BSR_COUNT(SloBreaches);
    BSR_EVENT(SloBreach, sample.time, breach_mask, burn_pct);
  } else if (breach_mask == 0 && report_.in_breach) {
    report_.in_breach = false;
    ++report_.recovers;
    BSR_COUNT(SloRecovers);
    BSR_EVENT(SloRecover, sample.time, breach_mask, burn_pct);
  }
}

std::vector<SloSample> slo_samples_from_journal(const Journal& journal) {
  std::vector<SloSample> out;
  for (const EventRecord& rec : journal.events) {
    if (rec.type != Event::kRouteServiceBatch &&
        rec.type != Event::kRouteServiceBatchCost) {
      continue;
    }
    // journal.events is sorted by time first, so one pass groups samples.
    if (out.empty() || out.back().time != rec.time) {
      out.push_back(SloSample{});
      out.back().time = rec.time;
    }
    SloSample& s = out.back();
    constexpr std::uint64_t kLow32 = 0xffffffffu;
    if (rec.type == Event::kRouteServiceBatch) {
      s.fresh += rec.subject >> 32;
      s.stale_served += rec.subject & kLow32;
      s.shedded += rec.correlation >> 32;
      s.refused += rec.correlation & kLow32;
    } else {
      s.p99_ticks = std::max(s.p99_ticks, rec.subject >> 32);
      s.max_ticks = std::max(s.max_ticks, rec.subject & kLow32);
      s.staleness = std::max(s.staleness, rec.correlation);
    }
  }
  return out;
}

}  // namespace bsr::obs
