// perf_engine — old-vs-new dispatch comparison for the traversal engine.
//
// Two head-to-head measurements on the standard synthetic topology:
//   1. filtered BFS edge throughput: legacy BfsRunner::run_filtered (one
//      std::function indirect call per edge relaxation, dense export) vs
//      engine::bfs with an inlined DominatedEdgeFilter;
//   2. MaxSG end-to-end wall time: the pre-engine implementation (verbatim
//      copy below, per-candidate union-find finds with path compression) vs
//      the engine-era snapshot-sweep broker::maxsg.
// Both comparisons first verify bit-identical results — the speedup claims
// are only meaningful because the outputs are exactly equal.
//
// Emits BENCH_engine.json (override the path with BENCH_ENGINE_JSON) for the
// CI artifact: the unified bsr-bench/1 layout from bench/harness.hpp plus the
// legacy "filtered_bfs"/"dominated_bfs"/"maxsg" sections as raw extras.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness.hpp"
#include "broker/baselines.hpp"
#include "broker/broker_set.hpp"
#include "broker/coverage.hpp"
#include "broker/maxsg.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/engine.hpp"
#include "graph/sampling.hpp"
#include "graph/union_find.hpp"
#include "io/table.hpp"

namespace {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

namespace legacy {

// The pre-engine MaxSG, kept verbatim as the baseline under test: a plain
// path-compressing UnionFind with two find() calls per candidate neighbor,
// instead of the snapshot root/size arrays the live implementation uses.
bsr::broker::MaxSgResult maxsg(const CsrGraph& g, std::uint32_t k) {
  using bsr::graph::UnionFind;
  const NodeId n = g.num_vertices();

  bsr::broker::MaxSgResult result;
  result.brokers = bsr::broker::BrokerSet(n);
  if (k == 0) return result;

  const std::uint32_t reachable_ceiling =
      bsr::graph::connected_components(g).largest_size();

  UnionFind uf(n);
  std::vector<bool> is_broker(n, false);
  std::uint32_t largest = 0;

  std::vector<std::uint32_t> root_stamp(n, 0);
  std::uint32_t epoch = 0;

  const auto candidate_gain = [&](NodeId w) -> std::uint32_t {
    ++epoch;
    std::uint32_t merged = 0;
    const NodeId rw = uf.find(w);
    root_stamp[rw] = epoch;
    merged += uf.component_size(rw);
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = uf.find(v);
      if (root_stamp[r] != epoch) {
        root_stamp[r] = epoch;
        merged += uf.component_size(r);
      }
    }
    return merged;
  };

  while (result.brokers.size() < k) {
    NodeId best_vertex = kUnreachable;
    std::uint32_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      const std::uint32_t gain = candidate_gain(w);
      if (gain > best_gain) {
        best_gain = gain;
        best_vertex = w;
      }
    }
    if (best_vertex == kUnreachable) break;

    is_broker[best_vertex] = true;
    result.brokers.add(best_vertex);
    for (const NodeId v : g.neighbors(best_vertex)) uf.unite(best_vertex, v);
    largest = std::max(largest, uf.component_size(best_vertex));
    result.component_curve.push_back(largest);

    if (largest >= reachable_ceiling) break;
  }

  result.final_component = largest;
  result.coverage = bsr::broker::coverage(g, result.brokers);
  return result;
}

}  // namespace legacy

struct BfsBench {
  double legacy_seconds = 0.0;
  double engine_seconds = 0.0;
  std::uint64_t edges_scanned = 0;  // per repetition, identical for both
  int reps = 0;

  [[nodiscard]] double legacy_meps() const {
    return double(edges_scanned) * reps / legacy_seconds / 1e6;
  }
  [[nodiscard]] double engine_meps() const {
    return double(edges_scanned) * reps / engine_seconds / 1e6;
  }
  [[nodiscard]] double speedup() const { return legacy_seconds / engine_seconds; }
};

/// Times `reps` sweeps over the same sources through both dispatch paths and
/// cross-checks that every dense distance array is bit-identical.
template <class StructFilter>
BfsBench bench_filtered_bfs(bsr::bench::Harness& harness, const std::string& label,
                            const CsrGraph& g,
                            const std::function<bool(NodeId, NodeId)>& fn_filter,
                            StructFilter struct_filter,
                            const std::vector<NodeId>& sources, int reps) {
  namespace engine = bsr::graph::engine;
  const NodeId n = g.num_vertices();

  bsr::graph::BfsRunner runner(n);
  engine::Workspace ws(n);

  BfsBench out;
  out.reps = reps;

  // Verification + edge accounting pass (untimed): identical dists per
  // source, and edges scanned = sum of deg(u) over visited vertices.
  for (const NodeId s : sources) {
    const auto dense = runner.run_filtered(g, s, fn_filter);
    engine::bfs(g, s, ws, struct_filter);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t d = ws.visited(v) ? ws.dist_unchecked(v) : kUnreachable;
      if (d != dense[v]) {
        std::cerr << "MISMATCH: source " << s << " vertex " << v << ": engine "
                  << d << " vs legacy " << dense[v] << "\n";
        std::exit(1);
      }
    }
    for (const NodeId v : ws.visit_order()) out.edges_scanned += g.degree(v);
  }

  std::uint64_t sink = 0;  // defeats dead-code elimination
  const auto& legacy_run = harness.run(label + ".legacy", reps, [&] {
    for (const NodeId s : sources) {
      const auto dense = runner.run_filtered(g, s, fn_filter);
      sink += dense[n - 1];
    }
  });
  out.legacy_seconds = legacy_run.wall_ms / 1e3;

  auto& engine_run = harness.run(label + ".engine", reps, [&] {
    for (const NodeId s : sources) {
      engine::bfs(g, s, ws, struct_filter);
      sink += ws.visit_order().size();
    }
  });
  out.engine_seconds = engine_run.wall_ms / 1e3;
  bsr::bench::Harness::metric(engine_run, "speedup", out.speedup());
  bsr::bench::Harness::metric(engine_run, "medges_per_sec", out.engine_meps());

  if (sink == 0xdeadbeef) std::cerr << "";  // keep `sink` observable
  return out;
}

void print_bfs(const char* label, const BfsBench& b, std::size_t num_sources) {
  std::cout << label << " (" << num_sources << " sources x " << b.reps << " reps, "
            << b.edges_scanned << " edge scans/rep):\n"
            << "  legacy std::function: "
            << bsr::io::format_double(b.legacy_seconds, 3) << "s  ("
            << bsr::io::format_double(b.legacy_meps(), 1) << " Medges/s)\n"
            << "  engine static:        "
            << bsr::io::format_double(b.engine_seconds, 3) << "s  ("
            << bsr::io::format_double(b.engine_meps(), 1) << " Medges/s)\n"
            << "  speedup:              x"
            << bsr::io::format_double(b.speedup(), 2) << "\n\n";
}

std::string json_bfs(const BfsBench& b, std::size_t num_sources) {
  std::ostringstream json;
  json << "{\n"
       << "    \"sources\": " << num_sources << ",\n"
       << "    \"reps\": " << b.reps << ",\n"
       << "    \"edge_scans_per_rep\": " << b.edges_scanned << ",\n"
       << "    \"legacy_seconds\": " << b.legacy_seconds << ",\n"
       << "    \"engine_seconds\": " << b.engine_seconds << ",\n"
       << "    \"legacy_medges_per_sec\": " << b.legacy_meps() << ",\n"
       << "    \"engine_medges_per_sec\": " << b.engine_meps() << ",\n"
       << "    \"speedup\": " << b.speedup() << "\n"
       << "  }";
  return json.str();
}

}  // namespace

int main() {
  const auto ctx = bsr::bench::make_context(
      "perf_engine: static dispatch vs std::function traversal");
  const CsrGraph& g = ctx.topo.graph;
  const NodeId n = g.num_vertices();
  namespace engine = bsr::graph::engine;
  std::cout << "threads: " << engine::num_threads() << " (BSR_THREADS)\n\n";
  bsr::bench::Harness harness("perf_engine", ctx);

  // --- filtered BFS throughput --------------------------------------------
  bsr::graph::Rng rng(ctx.env.seed);
  const auto sources = bsr::graph::sample_distinct(
      rng, n, static_cast<NodeId>(std::min<std::size_t>(ctx.env.bfs_sources, n)));
  const int reps = 3;

  // Headline: fault-aware traversal. The legacy path is FaultPlane::filter()
  // — a std::function doing an O(log d) binary-search edge lookup per scan —
  // vs the engine's O(1) slot-indexed FaultAwareFilter.
  bsr::graph::FaultPlane plane(g);
  {
    bsr::graph::Rng fault_rng(ctx.env.seed + 1);
    for (const auto& e : g.edges()) {
      if (fault_rng.bernoulli(0.05)) plane.fail_edge(e.u, e.v);
    }
  }
  const BfsBench fault_bfs =
      bench_filtered_bfs(harness, "bfs.fault_aware", g, plane.filter(),
                         engine::FaultAwareFilter{&plane}, sources, reps);
  print_bfs("fault-aware BFS", fault_bfs, sources.size());

  // Dispatch-only comparison: same O(1) predicate body on both sides, so the
  // gap isolates std::function call overhead + dense export.
  // Broker set: top 5% by degree — a realistic dominated subgraph density.
  const auto brokers =
      bsr::broker::db_top_degree(g, std::max<std::uint32_t>(1, n / 20));
  const std::function<bool(NodeId, NodeId)> dominated_fn =
      [&brokers](NodeId u, NodeId v) { return brokers.dominates_edge(u, v); };
  const BfsBench dom_bfs = bench_filtered_bfs(
      harness, "bfs.dominated", g, dominated_fn,
      engine::DominatedEdgeFilter{&brokers.mask()}, sources, reps);
  print_bfs("dominated BFS (dispatch only)", dom_bfs, sources.size());

  // --- MaxSG end-to-end ----------------------------------------------------
  const auto k = static_cast<std::uint32_t>(std::max<NodeId>(32, n / 100));
  bsr::broker::MaxSgResult legacy_result;
  const double legacy_maxsg_s =
      harness.run("maxsg.legacy", [&] { legacy_result = legacy::maxsg(g, k); })
          .wall_ms / 1e3;

  bsr::broker::MaxSgResult engine_result;
  const double engine_maxsg_s =
      harness.run("maxsg.engine", [&] { engine_result = bsr::broker::maxsg(g, k); })
          .wall_ms / 1e3;

  if (!std::ranges::equal(legacy_result.brokers.members(),
                          engine_result.brokers.members()) ||
      legacy_result.component_curve != engine_result.component_curve) {
    std::cerr << "MISMATCH: MaxSG selections diverged between implementations\n";
    return 1;
  }
  const double maxsg_speedup = legacy_maxsg_s / engine_maxsg_s;
  std::cout << "MaxSG (k=" << k << ", " << engine_result.brokers.size()
            << " picked, final component " << engine_result.final_component
            << "):\n"
            << "  legacy union-find:    "
            << bsr::io::format_double(legacy_maxsg_s, 3) << "s\n"
            << "  engine snapshot:      "
            << bsr::io::format_double(engine_maxsg_s, 3) << "s\n"
            << "  speedup:              x"
            << bsr::io::format_double(maxsg_speedup, 2) << "\n";

  // --- JSON artifact -------------------------------------------------------
  harness.metric("vertices", static_cast<double>(n));
  harness.metric("edges", static_cast<double>(g.num_edges()));
  harness.raw_section("filtered_bfs", json_bfs(fault_bfs, sources.size()));
  harness.raw_section("dominated_bfs", json_bfs(dom_bfs, sources.size()));
  {
    std::ostringstream maxsg_json;
    maxsg_json << "{\n"
               << "    \"k\": " << k << ",\n"
               << "    \"picked\": " << engine_result.brokers.size() << ",\n"
               << "    \"final_component\": " << engine_result.final_component
               << ",\n"
               << "    \"legacy_seconds\": " << legacy_maxsg_s << ",\n"
               << "    \"engine_seconds\": " << engine_maxsg_s << ",\n"
               << "    \"speedup\": " << maxsg_speedup << "\n"
               << "  }";
    harness.raw_section("maxsg", maxsg_json.str());
  }
  harness.write_json_file("BENCH_engine.json", "BENCH_ENGINE_JSON");
  return 0;
}
