#include "graph/engine.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "obs/stats.hpp"

namespace bsr::graph::engine {

namespace {

int env_threads() {
  const char* raw = std::getenv("BSR_THREADS");
  if (raw == nullptr || *raw == '\0') return 1;
  const long parsed = std::strtol(raw, nullptr, 10);
  if (parsed < 1) return 1;
  if (parsed > 256) return 256;
  return static_cast<int>(parsed);
}

// 0 = "use the environment"; set_num_threads stores an explicit override.
std::atomic<int> g_override{0};

}  // namespace

int num_threads() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int from_env = env_threads();
  return from_env;
}

void set_num_threads(int n) {
  g_override.store(n > 0 ? (n > 256 ? 256 : n) : 0, std::memory_order_relaxed);
}

std::size_t plan_shards(std::size_t count) {
  const auto want = static_cast<std::size_t>(num_threads());
  const std::size_t shards = want < count ? want : count;
  return shards == 0 ? 1 : shards;
}

void for_each_shard(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t shards = plan_shards(count);
  // One batch per call regardless of the shard fan-out, so the counter stays
  // invariant under BSR_THREADS (a per-shard count would not be).
  BSR_COUNT(EngineShardBatches);
  if (shards <= 1) {
    body(0, 0, count);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  for (std::size_t s = 1; s < shards; ++s) {
    workers.emplace_back(
        [&body, s, count, shards] { body(s, s * count / shards, (s + 1) * count / shards); });
  }
  body(0, 0, count / shards);
  for (auto& w : workers) w.join();
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace bsr::graph::engine
