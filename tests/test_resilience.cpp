#include "broker/resilience.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "graph/fault_plane.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_star;

TEST(FailBrokers, RandomRemovesExactCount) {
  const CsrGraph g = make_connected_random(40, 0.1, 1);
  const auto brokers = maxsg(g, 10).brokers;
  Rng rng(2);
  const auto survivors = fail_brokers(g, brokers, 3, FailureMode::kRandom, rng);
  EXPECT_EQ(survivors.size(), brokers.size() - 3);
  for (const NodeId v : survivors.members()) EXPECT_TRUE(brokers.contains(v));
}

TEST(FailBrokers, TargetedKillsHighestDegreeFirst) {
  const CsrGraph g = make_star(10);
  BrokerSet b(10);
  b.add(0);  // the hub
  b.add(3);
  b.add(7);
  Rng rng(3);
  const auto survivors = fail_brokers(g, b, 1, FailureMode::kTargetedTop, rng);
  EXPECT_FALSE(survivors.contains(0));
  EXPECT_EQ(survivors.size(), 2u);
}

TEST(FailBrokers, AllFailuresEmptySet) {
  const CsrGraph g = make_star(6);
  BrokerSet b(6);
  b.add(0);
  Rng rng(4);
  EXPECT_TRUE(fail_brokers(g, b, 5, FailureMode::kRandom, rng).empty());
}

TEST(FailBrokers, SizeMismatchThrows) {
  const CsrGraph g = make_star(6);
  Rng rng(5);
  EXPECT_THROW(fail_brokers(g, BrokerSet(7), 1, FailureMode::kRandom, rng),
               std::invalid_argument);
}

TEST(ResilienceCurve, ConnectivityNonIncreasingUnderTargetedFailures) {
  const CsrGraph g = make_connected_random(80, 0.06, 6);
  const auto brokers = maxsg(g, 20).brokers;
  Rng rng(7);
  const std::vector<std::size_t> steps{0, 2, 5, 10, 15};
  const auto curve =
      resilience_curve(g, brokers, steps, FailureMode::kTargetedTop, rng);
  ASSERT_EQ(curve.connectivity.size(), steps.size());
  EXPECT_NEAR(curve.connectivity[0], saturated_connectivity(g, brokers), 1e-12);
  for (std::size_t i = 1; i < curve.connectivity.size(); ++i) {
    EXPECT_LE(curve.connectivity[i], curve.connectivity[i - 1] + 1e-12);
  }
}

TEST(ResilienceCurve, TargetedAtLeastAsDamagingOnHubGraphs) {
  const CsrGraph g = make_star(50);
  BrokerSet b(50);
  b.add(0);
  b.add(1);
  b.add(2);
  const std::vector<std::size_t> steps{1};
  Rng rng_a(8), rng_b(8);
  const auto targeted =
      resilience_curve(g, b, steps, FailureMode::kTargetedTop, rng_a);
  const auto random = resilience_curve(g, b, steps, FailureMode::kRandom, rng_b);
  EXPECT_LE(targeted.connectivity[0], random.connectivity[0] + 1e-12);
}

TEST(ResilienceCurve, GroupCurveMatchesManualGroupRemoval) {
  // Star hub 0 is the only broker and every leaf edge is its own failure
  // group. All groups are interchangeable by symmetry, so whatever order the
  // curve's internal shuffle picks, failing s groups must give exactly the
  // connectivity of s hand-failed leaf edges: the survivors are a star on
  // (10 - s) vertices.
  const CsrGraph g = make_star(10);
  BrokerSet b(10);
  b.add(0);
  std::vector<bsr::graph::FailureGroup> groups;
  for (NodeId v = 1; v < 10; ++v) {
    groups.push_back({.center = v, .edges = {{0, v}}});
  }
  const std::vector<std::size_t> steps{0, 1, 3, 6, 9, 12};
  Rng rng(26);
  const auto curve = resilience_curve(
      g, b, std::span<const bsr::graph::FailureGroup>(groups), steps, rng);
  ASSERT_EQ(curve.connectivity.size(), steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::size_t failed = std::min(steps[i], groups.size());
    EXPECT_EQ(curve.failures[i], failed);
    bsr::graph::FaultPlane plane(g);
    for (std::size_t j = 0; j < failed; ++j) plane.fail_group(groups[j]);
    EXPECT_NEAR(curve.connectivity[i], saturated_connectivity(g, b, plane),
                1e-12)
        << "step " << steps[i];
  }
}

TEST(ResilienceCurve, SingleGroupCurveMatchesManualRemoval) {
  // With one group the shuffle is the identity, so the s=1 point must equal
  // a by-hand FaultPlane application of that exact group.
  const CsrGraph g = make_connected_random(50, 0.08, 27);
  const auto brokers = maxsg(g, 10).brokers;
  const std::vector<bsr::graph::FailureGroup> groups{
      bsr::graph::incident_group(g, 7)};
  const std::vector<std::size_t> steps{0, 1};
  Rng rng(28);
  const auto curve = resilience_curve(
      g, brokers, std::span<const bsr::graph::FailureGroup>(groups), steps, rng);
  EXPECT_NEAR(curve.connectivity[0], saturated_connectivity(g, brokers), 1e-12);
  bsr::graph::FaultPlane plane(g);
  plane.fail_group(groups[0]);
  EXPECT_NEAR(curve.connectivity[1], saturated_connectivity(g, brokers, plane),
              1e-12);
}

TEST(ResilienceCurve, GroupCurveNonIncreasingAndDeterministic) {
  const CsrGraph g = make_connected_random(80, 0.06, 29);
  const auto brokers = maxsg(g, 16).brokers;
  std::vector<bsr::graph::FailureGroup> groups;
  for (NodeId v = 0; v < 12; ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }
  const std::vector<std::size_t> steps{0, 2, 5, 9, 12, 20};
  Rng rng_a(30), rng_b(30);
  const auto a = resilience_curve(
      g, brokers, std::span<const bsr::graph::FailureGroup>(groups), steps, rng_a);
  const auto b = resilience_curve(
      g, brokers, std::span<const bsr::graph::FailureGroup>(groups), steps, rng_b);
  EXPECT_EQ(a.connectivity, b.connectivity);  // deterministic in the seed
  EXPECT_EQ(a.failures, b.failures);
  for (std::size_t i = 1; i < a.connectivity.size(); ++i) {
    // Nested prefixes: damage only accumulates.
    EXPECT_LE(a.connectivity[i], a.connectivity[i - 1] + 1e-12);
  }
  EXPECT_EQ(a.failures.back(), groups.size());  // steps clamp to |groups|
}

TEST(ResilienceCurve, GroupCurveSizeMismatchThrows) {
  const CsrGraph g = make_star(6);
  const std::vector<bsr::graph::FailureGroup> groups{
      bsr::graph::incident_group(g, 0)};
  const std::vector<std::size_t> steps{0, 1};
  Rng rng(31);
  EXPECT_THROW(
      (void)resilience_curve(g, BrokerSet(7),
                             std::span<const bsr::graph::FailureGroup>(groups),
                             steps, rng),
      std::invalid_argument);
}

TEST(Repair, SizeMismatchThrows) {
  const CsrGraph g = make_star(6);
  EXPECT_THROW((void)repair_brokers(g, BrokerSet(7), 1), std::invalid_argument);
  bsr::graph::FaultPlane plane(g);
  EXPECT_THROW((void)repair_brokers(g, BrokerSet(7), 1, plane),
               std::invalid_argument);
}

TEST(Repair, RestoresConnectivity) {
  const CsrGraph g = make_connected_random(80, 0.06, 9);
  const auto brokers = maxsg(g, 20).brokers;
  const double before = saturated_connectivity(g, brokers);
  Rng rng(10);
  const auto survivors = fail_brokers(g, brokers, 8, FailureMode::kTargetedTop, rng);
  const double damaged = saturated_connectivity(g, survivors);
  ASSERT_LT(damaged, before);
  const auto repaired = repair_brokers(g, survivors, 8);
  const double after = saturated_connectivity(g, repaired);
  EXPECT_GT(after, damaged);
  EXPECT_GE(after, before * 0.9);  // greedy repair recovers most of the loss
  EXPECT_LE(repaired.size(), brokers.size());
}

TEST(Repair, ZeroBudgetIsIdentity) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(3);
  const auto repaired = repair_brokers(g, b, 0);
  EXPECT_EQ(repaired.size(), b.size());
}

TEST(Repair, RepairedBrokersAreNew) {
  const CsrGraph g = make_connected_random(40, 0.1, 11);
  const auto brokers = maxsg(g, 8).brokers;
  Rng rng(12);
  const auto survivors = fail_brokers(g, brokers, 4, FailureMode::kRandom, rng);
  const auto repaired = repair_brokers(g, survivors, 4);
  // Members appended after the survivors must not duplicate them.
  std::size_t new_members = repaired.size() - survivors.size();
  EXPECT_GT(new_members, 0u);
}

TEST(FailBrokers, FailuresEqualToSetSizeEmptiesIt) {
  const CsrGraph g = make_connected_random(30, 0.15, 13);
  const auto brokers = maxsg(g, 6).brokers;
  ASSERT_EQ(brokers.size(), 6u);
  Rng rng(14);
  const auto none =
      fail_brokers(g, brokers, static_cast<std::uint32_t>(brokers.size()),
                   FailureMode::kRandom, rng);
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.num_vertices(), g.num_vertices());
}

TEST(Repair, ZeroBudgetIsIdentityUnderFaults) {
  const CsrGraph g = make_connected_random(30, 0.15, 15);
  BrokerSet b(g.num_vertices());
  b.add(3);
  bsr::graph::FaultPlane plane(g);
  plane.fail_group(bsr::graph::incident_group(g, 7));
  const auto repaired = repair_brokers(g, b, 0, plane);
  EXPECT_EQ(repaired.size(), b.size());
  EXPECT_TRUE(repaired.contains(3));
}

TEST(Repair, DamagedGraphRepairAvoidsFailedVertices) {
  const CsrGraph g = make_connected_random(60, 0.08, 16);
  const auto brokers = maxsg(g, 12).brokers;
  bsr::graph::FaultPlane plane(g);
  // Kill a few non-broker vertices outright: repair must not pick them.
  std::vector<NodeId> dead;
  for (NodeId v = 0; v < g.num_vertices() && dead.size() < 5; ++v) {
    if (!brokers.contains(v)) dead.push_back(v);
  }
  for (const NodeId v : dead) plane.fail_vertex(v);
  const auto repaired = repair_brokers(g, brokers, 6, plane);
  for (const NodeId v : dead) EXPECT_FALSE(repaired.contains(v));
  EXPECT_GE(repaired.size(), brokers.size());
}

TEST(Repair, DamagedGraphRepairImprovesDamagedConnectivity) {
  const CsrGraph g = make_connected_random(80, 0.06, 17);
  const auto brokers = maxsg(g, 16).brokers;
  Rng rng(18);
  const auto survivors = fail_brokers(g, brokers, 8, FailureMode::kTargetedTop, rng);
  bsr::graph::FaultPlane plane(g);
  Rng edge_rng(19);
  for (const bsr::graph::Edge& e : g.edges()) {
    if (edge_rng.bernoulli(0.15)) plane.fail_edge(e.u, e.v);
  }
  const double damaged = saturated_connectivity(g, survivors, plane);
  const auto repaired = repair_brokers(g, survivors, 8, plane);
  const double after = saturated_connectivity(g, repaired, plane);
  EXPECT_GE(after, damaged);
  // On a connected 80-vertex graph with only 15% of links down there is
  // always *something* a fresh broker can reconnect.
  EXPECT_GT(after, damaged);
}

TEST(LinkResilience, CurveIsNonIncreasingAndRepairHelps) {
  const CsrGraph g = make_connected_random(80, 0.06, 20);
  const auto brokers = maxsg(g, 16).brokers;
  Rng group_rng(21);
  const auto groups = random_link_groups(g, 30, group_rng);
  ASSERT_EQ(groups.size(), 30u);
  const std::vector<std::size_t> steps{0, 5, 15, 30};
  Rng rng(22);
  const auto curve = link_resilience_curve(g, brokers, groups, steps, 6, rng);
  ASSERT_EQ(curve.points.size(), steps.size());

  EXPECT_EQ(curve.points[0].failed_groups, 0u);
  EXPECT_EQ(curve.points[0].failed_edges, 0u);
  EXPECT_NEAR(curve.points[0].connectivity, saturated_connectivity(g, brokers),
              1e-12);
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    const auto& p = curve.points[i];
    EXPECT_EQ(p.failed_groups, steps[i]);
    // Repair adds brokers under the same faults, so it can never hurt.
    EXPECT_GE(p.repaired_connectivity, p.connectivity - 1e-12);
    if (i > 0) {
      // Nested failure prefixes: damage only accumulates.
      EXPECT_LE(p.connectivity, curve.points[i - 1].connectivity + 1e-12);
      EXPECT_GE(p.failed_edges, curve.points[i - 1].failed_edges);
    }
  }
}

TEST(LinkResilience, RandomLinkGroupsAreDistinctSingleEdges) {
  const CsrGraph g = make_connected_random(40, 0.1, 23);
  Rng rng(24);
  const auto groups = random_link_groups(g, 10, rng);
  ASSERT_EQ(groups.size(), 10u);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& group : groups) {
    ASSERT_EQ(group.edges.size(), 1u);
    const auto& e = group.edges.front();
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    seen.insert({std::min(e.u, e.v), std::max(e.u, e.v)});
  }
  EXPECT_EQ(seen.size(), 10u);  // sampled without replacement
}

TEST(LinkResilience, GroupCountClampedToEdgeCount) {
  const CsrGraph g = make_star(5);  // 4 edges
  Rng rng(25);
  const auto groups = random_link_groups(g, 100, rng);
  EXPECT_EQ(groups.size(), 4u);
}

}  // namespace
}  // namespace bsr::broker
