// perf_route_service — the route-serving plane under load and under churn.
//
// Two measurements plus one correctness gate:
//   1. Throughput: serve_batch over a gravity-demand workload, repeated until
//      >= 1M routes are served at scale 1.0, reported as routes/sec.
//   2. Latency: per-call query() wall time over a sample, p50/p99.
//   3. Stale-vs-fresh ablation (the exit-code gate): deterministic churn
//      schedules — a failure burst, a flap storm, and a burst with injected
//      rebuild crashes — served through RouteService while a from-scratch
//      service built at every audit instant provides the ground truth. Any
//      kFresh answer disagreeing with the fresh oracle fails the run; stale
//      answers are audited (misrouted/shunned) and staleness accounting is
//      checked against the configured bound.
//
// Env knobs beyond the standard REPRO_*:
//   ROUTE_RESULTS_TXT=f        write an integer-only digest of every served
//                              answer stream to f — byte-comparable across
//                              BSR_THREADS settings (CI `cmp`s it)
//   BENCH_ROUTE_SERVICE_JSON=f override the BENCH_route_service.json path
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness.hpp"
#include "broker/broker_set.hpp"
#include "broker/maxsg.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "graph/sampling.hpp"
#include "io/table.hpp"
#include "obs/episode.hpp"
#include "obs/journal.hpp"
#include "obs/sketch.hpp"
#include "obs/slo.hpp"
#include "sim/demand.hpp"
#include "sim/route_service.hpp"

namespace {

using bsr::graph::CsrGraph;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::sim::AnswerStatus;
using bsr::sim::AuditOutcome;
using bsr::sim::Flow;
using bsr::sim::RebuildInjection;
using bsr::sim::RouteAnswer;
using bsr::sim::RouteService;
using bsr::sim::RouteServiceConfig;

/// One churn event against the broker overlay.
struct ChurnEvent {
  double time = 0.0;
  NodeId vertex = 0;
  bool fail = true;
};

struct ChurnSchedule {
  std::string name;
  std::vector<ChurnEvent> events;
  RebuildInjection injection;
};

struct AblationResult {
  std::string name;
  std::uint64_t answers = 0;
  std::uint64_t fresh = 0;
  std::uint64_t fresh_mismatches = 0;  // the gate: must stay 0
  std::uint64_t stale_served = 0;
  std::uint64_t stale_misrouted = 0;
  std::uint64_t stale_shunned = 0;
  std::uint64_t shedded = 0;
  std::uint64_t refused = 0;
  std::uint64_t rebuild_crashes = 0;
  std::uint64_t epochs_published = 0;
  std::uint64_t max_stale_served = 0;
  std::uint64_t digest = 0;
};

/// Serves `flows` through a churn schedule, auditing every answer against a
/// from-scratch RouteService built at each audit instant (fresh by
/// construction, hence exact ground truth).
AblationResult run_ablation(const ChurnSchedule& schedule, const CsrGraph& g,
                            const bsr::broker::BrokerSet& brokers,
                            const std::vector<Flow>& flows,
                            const std::vector<double>& audit_times) {
  AblationResult out;
  out.name = schedule.name;
  FaultPlane faults(g);
  RouteServiceConfig config;
  config.max_stale_events = 16;
  config.rebuild.build_time = 2.0;
  RouteService service(g, brokers, &faults, config, schedule.injection);

  std::size_t next_event = 0;
  std::vector<RouteAnswer> answers;
  std::vector<RouteAnswer> truth_answers;
  std::vector<RouteAnswer> all;
  for (const double now : audit_times) {
    while (next_event < schedule.events.size() &&
           schedule.events[next_event].time <= now) {
      const ChurnEvent& e = schedule.events[next_event++];
      service.advance(e.time);
      if (e.fail) {
        faults.fail_vertex(e.vertex);
        service.on_fault(e.time);
      } else {
        faults.heal_vertex(e.vertex);
        service.on_heal(e.time);
      }
    }
    service.advance(now);
    service.serve_batch(flows, now, answers);
    all.insert(all.end(), answers.begin(), answers.end());

    // Ground truth: a service constructed right now is fresh by definition.
    RouteService truth(g, brokers, &faults);
    truth.serve_batch(flows, now, truth_answers);
    for (std::size_t i = 0; i < answers.size(); ++i) {
      const bool truth_reachable = truth_answers[i].reachable &&
                                   truth_answers[i].status != AnswerStatus::kRefused;
      switch (answers[i].status) {
        case AnswerStatus::kFresh:
          if (answers[i].reachable != truth_reachable) ++out.fresh_mismatches;
          break;
        case AnswerStatus::kStaleServed: {
          const AuditOutcome audit =
              bsr::sim::audit_answer(answers[i], truth_reachable);
          out.stale_misrouted += audit == AuditOutcome::kMisrouted;
          out.stale_shunned += audit == AuditOutcome::kShunned;
          break;
        }
        default: break;
      }
    }
  }

  out.answers = service.stats().queries;
  out.fresh = service.stats().fresh;
  out.stale_served = service.stats().stale_served;
  out.shedded = service.stats().shedded;
  out.refused = service.stats().refused;
  out.rebuild_crashes = service.stats().rebuild_crashes;
  out.epochs_published = service.stats().epochs_published;
  out.max_stale_served = service.stats().max_stale_served;
  out.digest = bsr::sim::answer_digest(all);
  return out;
}

std::string json_ablation(const AblationResult& r) {
  std::ostringstream json;
  json << "{\n"
       << "      \"answers\": " << r.answers << ",\n"
       << "      \"fresh\": " << r.fresh << ",\n"
       << "      \"fresh_mismatches\": " << r.fresh_mismatches << ",\n"
       << "      \"stale_served\": " << r.stale_served << ",\n"
       << "      \"stale_misrouted\": " << r.stale_misrouted << ",\n"
       << "      \"stale_shunned\": " << r.stale_shunned << ",\n"
       << "      \"refused\": " << r.refused << ",\n"
       << "      \"rebuild_crashes\": " << r.rebuild_crashes << ",\n"
       << "      \"epochs_published\": " << r.epochs_published << ",\n"
       << "      \"max_stale_served\": " << r.max_stale_served << "\n"
       << "    }";
  return json.str();
}

}  // namespace

int main() {
  const auto ctx = bsr::bench::make_context(
      "perf_route_service: epochal route oracle under load and churn");
  const CsrGraph& g = ctx.topo.graph;
  const NodeId n = g.num_vertices();
  std::cout << "threads: " << bsr::graph::engine::num_threads()
            << " (BSR_THREADS)\n\n";
  bsr::bench::Harness harness("perf_route_service", ctx);
  bsr::obs::start_recording();

  // --- setup: brokers + service + workload ---------------------------------
  const auto k = static_cast<std::uint32_t>(std::max<NodeId>(32, n / 100));
  bsr::bench::Stopwatch select_watch;
  const auto selection = bsr::broker::maxsg(g, k);
  const bsr::broker::BrokerSet& brokers = selection.brokers;
  std::cout << "brokers: MaxSG k=" << k << " ("
            << bsr::io::format_double(select_watch.seconds(), 2)
            << "s to select)\n";

  bsr::sim::DemandConfig demand;
  demand.num_flows = ctx.env.scaled(250'000, 20'000);
  bsr::graph::Rng demand_rng(ctx.env.seed);
  const std::vector<Flow> flows = bsr::sim::generate_flows(g, demand, demand_rng);

  FaultPlane faults(g);
  RouteService service(g, brokers, &faults);
  const double build_s =
      harness.run("oracle.rebuild", 3, [&] { service = RouteService(g, brokers, &faults); })
          .wall_ms /
      3e3;
  std::cout << "oracle build: " << bsr::io::format_double(build_s, 3) << "s ("
            << service.landmarks().size() << " landmarks, "
            << service.usable_broker_count() << " usable brokers)\n\n";

  // --- throughput ----------------------------------------------------------
  const int serve_reps = 4;
  std::vector<RouteAnswer> answers;
  auto& serve_run = harness.run("serve.batch", serve_reps,
                                [&] { service.serve_batch(flows, 0.0, answers); });
  const double serve_s = serve_run.wall_ms / 1e3;
  const std::uint64_t served =
      static_cast<std::uint64_t>(flows.size()) * serve_reps;
  const double routes_per_sec = serve_s > 0 ? double(served) / serve_s : 0.0;
  bsr::bench::Harness::metric(serve_run, "routes_per_sec", routes_per_sec);
  const std::uint64_t batch_digest = bsr::sim::answer_digest(answers);
  std::cout << "throughput: " << served << " routes in "
            << bsr::io::format_double(serve_s, 3) << "s  ("
            << bsr::io::format_double(routes_per_sec / 1e6, 2) << " M routes/s)\n";

  // --- per-query latency ---------------------------------------------------
  const std::uint32_t latency_samples = ctx.env.scaled(20'000, 2'000);
  bsr::graph::Rng pair_rng(ctx.env.seed + 1);
  const auto pairs = bsr::graph::sample_pairs(pair_rng, n, latency_samples);
  std::vector<double> lat_us;
  lat_us.reserve(pairs.size());
  harness.run("serve.query", [&] {
    for (const auto& [s, t] : pairs) {
      const auto start = std::chrono::steady_clock::now();
      const RouteAnswer a = service.query(s, t, 0.0);
      const auto stop = std::chrono::steady_clock::now();
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(stop - start).count());
      if (a.epoch == ~0ull) std::cerr << "";  // keep the call observable
    }
  });
  std::sort(lat_us.begin(), lat_us.end());
  const double p50 = lat_us[lat_us.size() / 2];
  const double p99 = lat_us[lat_us.size() * 99 / 100];
  std::cout << "latency (" << pairs.size() << " queries): p50 "
            << bsr::io::format_double(p50, 3) << "us, p99 "
            << bsr::io::format_double(p99, 3) << "us\n\n";

  // --- stale-vs-fresh correctness ablation ---------------------------------
  // Each schedule churns the highest-degree brokers — the landmarks — so the
  // stale epoch is maximally wrong. The audit workload is a deterministic
  // subsample of the demand flows.
  std::vector<Flow> audit_flows(
      flows.begin(),
      flows.begin() + std::min<std::size_t>(flows.size(),
                                            ctx.env.scaled(4'000, 1'000)));
  const std::vector<double> audit_times{0.5, 2.0, 4.0, 8.0, 16.0, 40.0};
  std::vector<NodeId> hubs(brokers.members().begin(), brokers.members().end());
  std::sort(hubs.begin(), hubs.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });

  std::vector<ChurnSchedule> schedules;
  {
    ChurnSchedule burst;
    burst.name = "burst";
    for (int i = 0; i < 4; ++i) {
      burst.events.push_back({1.0 + 0.5 * i, hubs[i], true});
    }
    schedules.push_back(std::move(burst));

    ChurnSchedule flap;
    flap.name = "flap";
    for (int i = 0; i < 6; ++i) {
      flap.events.push_back({1.0 + 2.0 * i, hubs[i % 3], i % 2 == 0});
    }
    schedules.push_back(std::move(flap));

    ChurnSchedule crashy;
    crashy.name = "burst_rebuild_crashes";
    for (int i = 0; i < 4; ++i) {
      crashy.events.push_back({1.0 + 0.5 * i, hubs[i], true});
    }
    crashy.injection.crash_next_rebuilds = 2;
    schedules.push_back(std::move(crashy));
  }

  bool gate_failed = false;
  std::ostringstream ablation_json;
  ablation_json << "{\n";
  std::vector<std::uint64_t> ablation_digests;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    bsr::bench::Stopwatch watch;
    const AblationResult r =
        run_ablation(schedules[i], g, brokers, audit_flows, audit_times);
    ablation_digests.push_back(r.digest);
    std::cout << "ablation " << r.name << ": " << r.answers << " answers, "
              << r.fresh << " fresh (" << r.fresh_mismatches << " mismatches), "
              << r.stale_served << " stale (" << r.stale_misrouted
              << " misrouted, " << r.stale_shunned << " shunned), "
              << r.rebuild_crashes << " rebuild crashes, staleness high-water "
              << r.max_stale_served << " ("
              << bsr::io::format_double(watch.seconds(), 2) << "s)\n";
    if (r.fresh_mismatches != 0) {
      std::cerr << "GATE: " << r.fresh_mismatches
                << " kFresh answers disagree with the fresh oracle in schedule "
                << r.name << "\n";
      gate_failed = true;
    }
    if (r.max_stale_served > 16) {
      std::cerr << "GATE: staleness accounting exceeded the configured bound in "
                << r.name << "\n";
      gate_failed = true;
    }
    ablation_json << "    \"" << r.name << "\": " << json_ablation(r)
                  << (i + 1 < schedules.size() ? ",\n" : "\n");
  }
  ablation_json << "  }";
  std::cout << "\n";

  bsr::obs::stop_recording();
  const auto journal = bsr::obs::snapshot_journal();

  // --- causal episode reconstruction ----------------------------------------
  // The ablation journal above interleaves three schedules that each restart
  // simulated time, so episode stitching gets its own recording pass: one
  // service through a fail burst (with one injected rebuild crash), heals,
  // and quiescence. Reconstruction feeds the obs.episode.* phase sketches,
  // which the snapshot below then carries into the digest.
  bsr::obs::start_recording();
  {
    FaultPlane ep_faults(g);
    RouteServiceConfig ep_config;
    ep_config.max_stale_events = 16;
    ep_config.rebuild.build_time = 2.0;
    RebuildInjection ep_injection;
    ep_injection.crash_next_rebuilds = 1;
    RouteService ep_service(g, brokers, &ep_faults, ep_config, ep_injection);
    for (int i = 0; i < 4; ++i) {
      const double now = 1.0 + 0.5 * i;
      ep_service.advance(now);
      ep_faults.fail_vertex(hubs[i]);
      ep_service.on_fault(now);
    }
    ep_service.advance(20.0);
    for (int i = 0; i < 4; ++i) {
      const double now = 20.0 + 0.5 * i;
      ep_service.advance(now);
      ep_faults.heal_vertex(hubs[i]);
      ep_service.on_heal(now);
    }
    ep_service.advance(60.0);
  }
  bsr::obs::stop_recording();
  const auto episode_journal = bsr::obs::snapshot_journal();
  bsr::obs::EpisodeReport episode_report;
  harness.run("episodes.reconstruct", [&] {
    episode_report = bsr::obs::episodes_from_journal(episode_journal);
  });
  std::uint64_t episodes_closed = 0;
  double episodes_exposure = 0.0;
  for (const bsr::obs::Episode& ep : episode_report.episodes) {
    episodes_closed += ep.closed ? 1 : 0;
    episodes_exposure += ep.span();
  }
  std::cout << "episodes: " << episode_report.episodes.size()
            << " reconstructed (" << episodes_closed << " closed), "
            << bsr::io::format_double(episodes_exposure, 2)
            << " time-units of exposure, " << episode_report.malformed
            << " malformed\n";

  // --- sketch distributions + offline SLO verdict ---------------------------
  // Every quantile below is a bucket lower bound from the fixed-point
  // sketches (integers, merge-order free), and the SLO monitor replays the
  // journal's batch events — both deterministic at any BSR_THREADS, so the
  // digest file can carry them verbatim. The spec is deliberately breaching:
  // fresh_min=0.999 cannot survive the all-stale degraded batches of the
  // churn ablations, pinning one breach/recover episode end to end.
  const bsr::obs::SketchSnapshot sketches = bsr::obs::snapshot_sketches();
  const auto slo_samples = bsr::obs::slo_samples_from_journal(journal);
  bsr::obs::SloMonitor slo_monitor(
      bsr::obs::parse_slo_spec("fresh_min=0.999,window=2,long_window=4"));
  for (const bsr::obs::SloSample& s : slo_samples) slo_monitor.observe(s);
  const bsr::obs::SloReport slo_report = slo_monitor.report();
  for (std::size_t s = 0; s < bsr::obs::kNumSketches; ++s) {
    if (sketches[s].empty()) continue;
    std::cout << "sketch " << bsr::obs::name(static_cast<bsr::obs::Sketch>(s))
              << ": n=" << sketches[s].count() << " p50=" << sketches[s].p50()
              << " p90=" << sketches[s].p90() << " p99=" << sketches[s].p99()
              << " max=" << sketches[s].max() << "\n";
  }
  std::cout << "slo (fresh_min=0.999): " << slo_report.samples << " samples, "
            << slo_report.breaches << " breaches, " << slo_report.recovers
            << " recovers\n\n";

  // --- deterministic digest (CI `cmp`s this across BSR_THREADS) ------------
  if (const char* txt_path = std::getenv("ROUTE_RESULTS_TXT")) {
    std::ofstream txt(txt_path);
    txt << "vertices " << n << "\n"
        << "edges " << g.num_edges() << "\n"
        << "brokers " << brokers.size() << "\n"
        << "flows " << flows.size() << "\n"
        << "batch_digest " << batch_digest << "\n";
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      txt << "ablation_" << schedules[i].name << "_digest "
          << ablation_digests[i] << "\n";
    }
    txt << "journal_events " << journal.events.size() << "\n";
    for (std::size_t s = 0; s < bsr::obs::kNumSketches; ++s) {
      txt << "sketch_" << bsr::obs::name(static_cast<bsr::obs::Sketch>(s))
          << " " << sketches[s].count() << " " << sketches[s].p50() << " "
          << sketches[s].p90() << " " << sketches[s].p99() << " "
          << sketches[s].max() << "\n";
    }
    txt << "slo_samples " << slo_report.samples << "\n"
        << "slo_breaches " << slo_report.breaches << "\n"
        << "slo_recovers " << slo_report.recovers << "\n"
        << "episodes " << episode_report.episodes.size() << "\n"
        << "episodes_closed " << episodes_closed << "\n"
        << "episodes_exposure_ms "
        << static_cast<std::uint64_t>(episodes_exposure * 1e3 + 0.5) << "\n"
        << "episodes_malformed " << episode_report.malformed << "\n";
    std::cout << "wrote " << txt_path << "\n";
  }

  // --- JSON artifact -------------------------------------------------------
  harness.metric("vertices", static_cast<double>(n));
  harness.metric("brokers", static_cast<double>(brokers.size()));
  harness.metric("routes_served", static_cast<double>(served));
  harness.metric("routes_per_sec", routes_per_sec);
  harness.metric("query_p50_us", p50);
  harness.metric("query_p99_us", p99);
  harness.metric("oracle_build_seconds", build_s);
  harness.metric("journal_events", static_cast<double>(journal.events.size()));
  harness.metric("slo_samples", static_cast<double>(slo_report.samples));
  harness.metric("slo_breaches", static_cast<double>(slo_report.breaches));
  harness.metric("episodes", static_cast<double>(episode_report.episodes.size()));
  harness.metric("episodes_closed", static_cast<double>(episodes_closed));
  harness.metric("episodes_malformed",
                 static_cast<double>(episode_report.malformed));
  harness.raw_section("ablation", ablation_json.str());
  harness.write_json_file("BENCH_route_service.json", "BENCH_ROUTE_SERVICE_JSON");

  if (gate_failed) return 1;
  std::cout << "stale-vs-fresh gate: OK\n";
  return 0;
}
