#include "graph/renumbering.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/degree_stats.hpp"
#include "graph/engine.hpp"
#include "graph/graph_builder.hpp"

namespace bsr::graph {

namespace {

std::vector<NodeId> invert(const std::vector<NodeId>& to_old) {
  std::vector<NodeId> to_new(to_old.size());
  for (NodeId new_id = 0; new_id < to_old.size(); ++new_id) {
    to_new[to_old[new_id]] = new_id;
  }
  return to_new;
}

}  // namespace

Renumbering Renumbering::identity(NodeId n) {
  Renumbering r;
  r.to_old_.resize(n);
  std::iota(r.to_old_.begin(), r.to_old_.end(), NodeId{0});
  r.to_new_ = r.to_old_;
  return r;
}

Renumbering Renumbering::from_new_order(std::vector<NodeId> order) {
  const std::size_t n = order.size();
  std::vector<bool> seen(n, false);
  for (const NodeId old_id : order) {
    if (old_id >= n || seen[old_id]) {
      throw std::invalid_argument(
          "Renumbering::from_new_order: not a permutation of [0, n)");
    }
    seen[old_id] = true;
  }
  Renumbering r;
  r.to_old_ = std::move(order);
  r.to_new_ = invert(r.to_old_);
  return r;
}

Renumbering Renumbering::degree_descending(const CsrGraph& g) {
  Renumbering r;
  r.to_old_ = vertices_by_degree_desc(g);
  r.to_new_ = invert(r.to_old_);
  return r;
}

Renumbering Renumbering::degree_descending_segmented(const CsrGraph& g,
                                                     NodeId boundary) {
  const NodeId n = g.num_vertices();
  if (boundary > n) {
    throw std::invalid_argument(
        "Renumbering::degree_descending_segmented: boundary > num_vertices");
  }
  // vertices_by_degree_desc is degree-descending with ascending-id ties; a
  // stable partition by segment preserves that order within each segment.
  const std::vector<NodeId> global = vertices_by_degree_desc(g);
  Renumbering r;
  r.to_old_.reserve(n);
  for (const NodeId v : global) {
    if (v < boundary) r.to_old_.push_back(v);
  }
  for (const NodeId v : global) {
    if (v >= boundary) r.to_old_.push_back(v);
  }
  r.to_new_ = invert(r.to_old_);
  return r;
}

Renumbering Renumbering::bfs_order(const CsrGraph& g, NodeId source) {
  const NodeId n = g.num_vertices();
  if (source >= n) {
    throw std::invalid_argument("Renumbering::bfs_order: source out of range");
  }
  engine::Workspace ws(n);
  engine::bfs(g, source, ws, engine::AllEdges{});
  Renumbering r;
  r.to_old_.reserve(n);
  const auto order = ws.visit_order();
  r.to_old_.assign(order.begin(), order.end());
  for (NodeId v = 0; v < n; ++v) {
    if (!ws.visited(v)) r.to_old_.push_back(v);
  }
  r.to_new_ = invert(r.to_old_);
  return r;
}

bool Renumbering::is_identity() const {
  for (NodeId v = 0; v < to_new_.size(); ++v) {
    if (to_new_[v] != v) return false;
  }
  return true;
}

CsrGraph Renumbering::apply(const CsrGraph& g) const {
  if (g.num_vertices() != size()) {
    throw std::invalid_argument("Renumbering::apply: vertex count mismatch");
  }
  const NodeId n = size();
  // Degrees are label-invariant, so the CSR offsets can be laid out directly
  // and each relabeled adjacency list filled and sorted in place — no
  // intermediate edge list, no builder dedup pass.
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId new_u = 0; new_u < n; ++new_u) {
    offsets[new_u + 1] = offsets[new_u] + g.degree(to_old_[new_u]);
  }
  std::vector<NodeId> adjacency(offsets[n]);
  for (NodeId new_u = 0; new_u < n; ++new_u) {
    std::uint64_t out = offsets[new_u];
    for (const NodeId v : g.neighbors(to_old_[new_u])) {
      adjacency[out++] = to_new_[v];
    }
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[new_u]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(out));
  }
  return CsrGraph(std::move(offsets), std::move(adjacency));
}

std::vector<NodeId> Renumbering::map_to_new(std::span<const NodeId> old_ids) const {
  std::vector<NodeId> out;
  out.reserve(old_ids.size());
  for (const NodeId v : old_ids) out.push_back(to_new(v));
  return out;
}

std::vector<NodeId> Renumbering::map_to_old(std::span<const NodeId> new_ids) const {
  std::vector<NodeId> out;
  out.reserve(new_ids.size());
  for (const NodeId v : new_ids) out.push_back(to_old(v));
  return out;
}

Edge Renumbering::map_edge_to_new(Edge e) const {
  const NodeId u = to_new(e.u);
  const NodeId v = to_new(e.v);
  return u < v ? Edge{u, v} : Edge{v, u};
}

Edge Renumbering::map_edge_to_old(Edge e) const {
  const NodeId u = to_old(e.u);
  const NodeId v = to_old(e.v);
  return u < v ? Edge{u, v} : Edge{v, u};
}

FailureGroup Renumbering::map_group_to_new(const FailureGroup& group) const {
  FailureGroup out;
  out.center = to_new(group.center);
  out.edges.reserve(group.edges.size());
  for (const Edge& e : group.edges) out.edges.push_back(map_edge_to_new(e));
  return out;
}

std::uint64_t total_neighbor_gap(const CsrGraph& g) {
  std::uint64_t total = 0;
  const NodeId n = g.num_vertices();
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      total += u > v ? u - v : v - u;
    }
  }
  return total;
}

double average_neighbor_gap(const CsrGraph& g) {
  const std::uint64_t entries = 2 * g.num_edges();
  if (entries == 0) return 0.0;
  return static_cast<double>(total_neighbor_gap(g)) / static_cast<double>(entries);
}

}  // namespace bsr::graph
