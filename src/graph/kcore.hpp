// k-core decomposition (coreness) via the Matula–Beck peeling algorithm.
//
// Coreness quantifies how "core" vs "edge" a vertex sits in the topology.
// Fig. 4 of the paper contrasts the DB baseline (brokers crowded in the core)
// with MaxSG (brokers also covering the outer ring); we reproduce that
// contrast with coreness profiles of the selected broker sets.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

/// Coreness of each vertex: the largest k such that the vertex belongs to the
/// k-core (maximal subgraph with minimum degree >= k). O(V + E).
[[nodiscard]] std::vector<std::uint32_t> coreness(const CsrGraph& g);

/// Maximum coreness over all vertices (the degeneracy of the graph).
[[nodiscard]] std::uint32_t degeneracy(const CsrGraph& g);

}  // namespace bsr::graph
