// Exporters for the telemetry plane.
//
// Three consumers, three formats:
//   * write_json     — machine-readable snapshot with a stable, versioned
//                      schema ("obs_schema_version"); keys appear in fixed
//                      registry slot order so outputs diff cleanly run-to-run.
//                      This is what BENCH_*.json files and the CI counter
//                      tripwire are built from.
//   * dump_pretty    — aligned human table (brokerctl stats prints this to
//                      stderr). Zero-valued slots are skipped.
//   * write_chrome_trace — the drained span tree as Chrome trace_event JSON
//                      (load in chrome://tracing or Perfetto for a flame
//                      chart); counter deltas ride along in "args".
//
// Flight-recorder formats (journal.hpp / timeseries.hpp):
//   * write_events_jsonl — the event journal as JSON Lines under the
//                      versioned `bsr-events/1` schema: one header object
//                      (schema, event count, drop count), then one object
//                      per record. Doubles print via std::to_chars shortest
//                      round-trip, so a fixed seed produces a byte-identical
//                      file at any BSR_THREADS.
//   * write_series_csv — the per-round counter time series with one column
//                      per registry slot (stable header, every slot present).
//   * write_journal_chrome_trace — journal records as trace_event instant
//                      ("i") events plus per-round counter ("C") tracks, so
//                      a whole churn run loads in Perfetto.
//
// obs sits below every other library, so formatting here is hand-rolled
// rather than borrowed from bsr_io.
#pragma once

#include <iosfwd>
#include <span>

#include "obs/episode.hpp"
#include "obs/journal.hpp"
#include "obs/qtrace.hpp"
#include "obs/slo.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace bsr::obs {

/// Versioned JSON snapshot. Histograms serialize as
/// {"buckets": [[bucket_index, count], ...], "total": N} with zero buckets
/// omitted; bucket b >= 1 covers values in [2^(b-1), 2^b).
void write_json(std::ostream& os, const Snapshot& snap);

/// Aligned `name  value` table of every non-zero slot; histograms render as
/// total plus a compact nonzero-bucket list.
void dump_pretty(std::ostream& os, const Snapshot& snap);

/// Chrome trace_event ("X" complete events) for one thread's drained spans.
void write_chrome_trace(std::ostream& os, std::span<const SpanRecord> spans);

/// Event journal as `bsr-events/1` JSON Lines: header object first
/// ({"schema": "bsr-events/1", "events": N, "dropped": D}), then one
/// {"t", "type", "subject", "corr"} object per record in export order.
void write_events_jsonl(std::ostream& os, const Journal& journal);

/// Per-round counter time series as CSV: `round,t_begin,t_end` followed by
/// one column per counter slot in registry order, every slot present.
void write_series_csv(std::ostream& os, std::span<const SeriesRow> rows);

/// Journal + series as Chrome trace_event JSON: records become instant
/// ("i") events at t*1e6 microseconds, and each counter that moved anywhere
/// in the series becomes a counter ("C") track with one sample per round.
void write_journal_chrome_trace(std::ostream& os, const Journal& journal,
                                std::span<const SeriesRow> rows);

/// Query traces as `bsr-qtrace/1` JSON Lines: header object first
/// ({"schema": "bsr-qtrace/1", "rows": N, "dropped": D}), then one object
/// per row in trace-id order with the answer tag rendered by name
/// ("fresh" / "stale_served" / "shedded" / "refused"; tag index =
/// sim::AnswerStatus value) and the per-stage tick costs nested under
/// "ticks". Byte-identical at any BSR_THREADS for a fixed seed.
void write_qtrace_jsonl(std::ostream& os, const QtraceSnapshot& snap);

/// Query traces as Chrome trace_event JSON: one complete ("X") event per
/// row, named by answer tag, placed on the serving epoch's track
/// (tid = epoch) with dur = total ticks, so Perfetto shows each oracle
/// epoch's serving behavior as its own lane keyed by the failure-episode
/// correlation id in "args".
void write_qtrace_chrome_trace(std::ostream& os, const QtraceSnapshot& snap);

/// Reconstructed episodes as `bsr-episodes/1` JSON Lines: header object
/// first ({"schema", "episodes", "journal_dropped", "qtrace_dropped",
/// "malformed", "unattributed"}), then one object per episode in report
/// order with the exact phase decomposition nested under "phases". Doubles
/// print via std::to_chars shortest round-trip — byte-identical for a fixed
/// journal at any BSR_THREADS, and identical between live emission and
/// offline replay of the same events file.
void write_episodes_jsonl(std::ostream& os, const EpisodeReport& report);

/// Reconstructed episodes as Chrome trace_event JSON: the health plane and
/// serve plane get one track each (thread_name metadata), every episode is
/// an enclosing complete ("X") slice with its phase partition nested inside,
/// and flow events ("s"/"f") draw an arrow from the health episode that was
/// live when each serve episode opened — the cross-plane causal link
/// Perfetto renders across tracks.
void write_episode_chrome_trace(std::ostream& os, const EpisodeReport& report);

/// Machine-readable SLO verdict under the `bsr-slo/1` schema: the spec,
/// sample/breach/recover totals, the boolean verdict `ok`, and one object
/// per objective (target, worst short/long burn, breach sample count, first
/// breach time; -1 = never). Doubles print via std::to_chars — byte-stable.
void write_slo_json(std::ostream& os, const SloReport& report);

}  // namespace bsr::obs
