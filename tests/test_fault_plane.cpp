#include "graph/fault_plane.hpp"

#include <gtest/gtest.h>

#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "graph/bfs.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::broker::BrokerSet;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

TEST(FaultPlane, StartsPristine) {
  const CsrGraph g = make_path(5);
  FaultPlane plane(g);
  EXPECT_TRUE(plane.pristine());
  EXPECT_EQ(plane.num_failed_edges(), 0u);
  EXPECT_EQ(plane.num_failed_vertices(), 0u);
  EXPECT_TRUE(plane.edge_ok(1, 2));
  EXPECT_TRUE(plane.vertex_ok(3));
}

TEST(FaultPlane, SingleEdgeFailAndHeal) {
  const CsrGraph g = make_path(4);
  FaultPlane plane(g);
  EXPECT_TRUE(plane.fail_edge(1, 2));
  EXPECT_FALSE(plane.edge_ok(1, 2));
  EXPECT_FALSE(plane.edge_ok(2, 1));  // symmetric
  EXPECT_TRUE(plane.edge_ok(0, 1));
  EXPECT_EQ(plane.num_failed_edges(), 1u);

  // Refcounted: a second failure layer needs a second heal.
  EXPECT_FALSE(plane.fail_edge(2, 1));
  EXPECT_FALSE(plane.heal_edge(1, 2));
  EXPECT_FALSE(plane.edge_ok(1, 2));
  EXPECT_TRUE(plane.heal_edge(1, 2));
  EXPECT_TRUE(plane.edge_ok(1, 2));
  EXPECT_TRUE(plane.pristine());
}

TEST(FaultPlane, NonEdgesAndHealingUpEdgesAreNoOps) {
  const CsrGraph g = make_path(4);
  FaultPlane plane(g);
  EXPECT_FALSE(plane.fail_edge(0, 2));     // no such edge
  EXPECT_FALSE(plane.fail_edge(0, 99));    // out of range
  EXPECT_FALSE(plane.heal_edge(0, 1));     // already up
  EXPECT_TRUE(plane.pristine());
  EXPECT_FALSE(plane.edge_ok(0, 2));
  EXPECT_FALSE(plane.edge_ok(0, 99));
}

TEST(FaultPlane, VertexFailureDropsIncidentEdges) {
  const CsrGraph g = make_star(6);
  FaultPlane plane(g);
  EXPECT_TRUE(plane.fail_vertex(0));
  EXPECT_FALSE(plane.vertex_ok(0));
  for (NodeId v = 1; v < 6; ++v) EXPECT_FALSE(plane.edge_ok(0, v));
  EXPECT_EQ(plane.materialize().num_edges(), 0u);
  EXPECT_TRUE(plane.heal_vertex(0));
  EXPECT_TRUE(plane.pristine());
  EXPECT_TRUE(plane.edge_ok(0, 3));
}

TEST(FaultPlane, IncidentGroupCoversAllMembershipEdges) {
  const CsrGraph g = make_star(8);
  const FailureGroup group = incident_group(g, 0);
  EXPECT_EQ(group.center, 0u);
  EXPECT_EQ(group.edges.size(), 7u);
  FaultPlane plane(g);
  EXPECT_EQ(plane.fail_group(group), 7u);
  EXPECT_EQ(plane.num_failed_edges(), 7u);
  EXPECT_EQ(plane.heal_group(group), 7u);
  EXPECT_TRUE(plane.pristine());
}

TEST(FaultPlane, RegionGroupEmitsEachEdgeOnce) {
  const CsrGraph g = make_complete(4);
  const std::vector<NodeId> region{0, 1};
  const FailureGroup group = region_group(g, region);
  // Edges touching {0, 1} in K4: 01, 02, 03, 12, 13.
  EXPECT_EQ(group.edges.size(), 5u);
  FaultPlane plane(g);
  EXPECT_EQ(plane.fail_group(group), 5u);
  EXPECT_TRUE(plane.edge_ok(2, 3));  // the only surviving edge
  EXPECT_FALSE(plane.edge_ok(0, 1));
}

TEST(FaultPlane, OverlappingGroupsComposeViaRefcounts) {
  const CsrGraph g = make_complete(5);
  const std::vector<NodeId> region_a{0, 1};
  const std::vector<NodeId> region_b{1, 2};
  const FailureGroup a = region_group(g, region_a);
  const FailureGroup b = region_group(g, region_b);
  FaultPlane plane(g);
  plane.fail_group(a);
  plane.fail_group(b);
  plane.heal_group(a);
  // Edge 1-2 is in both groups: must still be down after healing only A.
  EXPECT_FALSE(plane.edge_ok(1, 2));
  plane.heal_group(b);
  EXPECT_TRUE(plane.pristine());
}

TEST(FaultPlane, MaterializeMatchesEdgeOkQueries) {
  const CsrGraph g = make_connected_random(24, 0.2, 3);
  FaultPlane plane(g);
  Rng rng(4);
  for (const Edge& e : g.edges()) {
    if (rng.bernoulli(0.3)) plane.fail_edge(e.u, e.v);
  }
  plane.fail_vertex(5);
  const CsrGraph rebuilt = plane.materialize();
  ASSERT_EQ(rebuilt.num_vertices(), g.num_vertices());
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    for (NodeId v = u + 1; v < g.num_vertices(); ++v) {
      EXPECT_EQ(rebuilt.has_edge(u, v), plane.edge_ok(u, v))
          << "edge " << u << "-" << v;
    }
  }
}

TEST(FaultPlane, DamagedConnectivityMatchesBruteForceRebuild) {
  const CsrGraph g = make_connected_random(40, 0.12, 7);
  const BrokerSet brokers = bsr::broker::maxsg(g, 8).brokers;
  FaultPlane plane(g);
  Rng rng(8);
  for (const Edge& e : g.edges()) {
    if (rng.bernoulli(0.25)) plane.fail_edge(e.u, e.v);
  }
  plane.fail_vertex(2);
  plane.fail_vertex(17);
  const double overlay =
      bsr::broker::saturated_connectivity(g, brokers, plane);
  const double brute =
      bsr::broker::saturated_connectivity(plane.materialize(), brokers);
  EXPECT_DOUBLE_EQ(overlay, brute);
}

TEST(FaultPlane, FilterComposesWithFilteredBfs) {
  const CsrGraph g = make_path(5);
  FaultPlane plane(g);
  plane.fail_edge(2, 3);
  BfsRunner runner(g.num_vertices());
  const auto dist = runner.run_filtered(g, 0, plane.filter());
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(FlapSchedule, AppliesAndHealsBackToOriginalConnectivity) {
  const CsrGraph g = make_connected_random(30, 0.15, 11);
  const BrokerSet brokers = bsr::broker::maxsg(g, 6).brokers;
  std::vector<FailureGroup> groups;
  for (NodeId v = 0; v < 5; ++v) groups.push_back(incident_group(g, v));

  FlapConfig config;
  config.outage_rate = 0.8;
  config.mean_downtime = 4.0;
  config.horizon = 50.0;
  Rng rng(12);
  const auto events = make_flap_schedule(groups.size(), config, rng);
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.size() % 2, 0u);  // every fail has a heal

  const double original = bsr::broker::saturated_connectivity(g, brokers);
  FaultPlane plane(g);
  double prev_time = 0.0;
  for (const FlapEvent& event : events) {
    EXPECT_GE(event.time, prev_time);  // sorted
    prev_time = event.time;
    apply_flap_event(plane, groups, event);
    // Damage can only remove edges, never add connectivity.
    EXPECT_LE(bsr::broker::saturated_connectivity(g, brokers, plane),
              original + 1e-12);
  }
  EXPECT_TRUE(plane.pristine());
  EXPECT_DOUBLE_EQ(bsr::broker::saturated_connectivity(g, brokers, plane),
                   original);
}

TEST(FlapSchedule, DeterministicInSeed) {
  FlapConfig config;
  Rng a(5), b(5);
  const auto e1 = make_flap_schedule(7, config, a);
  const auto e2 = make_flap_schedule(7, config, b);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_DOUBLE_EQ(e1[i].time, e2[i].time);
    EXPECT_EQ(e1[i].group, e2[i].group);
    EXPECT_EQ(e1[i].kind, e2[i].kind);
  }
}

TEST(FlapSchedule, RejectsBadConfig) {
  Rng rng(6);
  EXPECT_THROW(make_flap_schedule(0, {}, rng), std::invalid_argument);
  FlapConfig bad;
  bad.outage_rate = 0.0;
  EXPECT_THROW(make_flap_schedule(3, bad, rng), std::invalid_argument);
  bad = FlapConfig{};
  bad.mean_downtime = -1.0;
  EXPECT_THROW(make_flap_schedule(3, bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::graph
