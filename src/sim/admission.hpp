// QoS admission control over the brokered plane.
//
// One deployment option the paper sketches (after [8]): the broker set
// blocks connections whose QoS requirement cannot be met. This module
// simulates that plane: each flow carries a QoS requirement (minimum E2E
// success probability); the controller admits it on the brokered plane if a
// dominating path meets the requirement, else falls back to the BGP plane
// if that meets it, else blocks. Capacity limits on brokers turn this into
// a simple admission-control loop.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "sim/demand.hpp"
#include "sim/qos.hpp"
#include "sim/router.hpp"

namespace bsr::sim {

struct AdmissionConfig {
  QosModel qos;
  /// Minimum E2E QoS success probability a flow demands.
  double qos_requirement = 0.95;
  /// Per-broker transit capacity (volume units); 0 = unlimited.
  double broker_capacity = 0.0;
};

enum class AdmissionOutcome : std::uint8_t {
  kBrokered,   // admitted on the dominating-path plane
  kBgpFallback,// requirement met by the plain shortest path
  kBlocked,    // neither plane meets the requirement (or capacity exhausted)
  kUnreachable,
};

struct AdmissionStats {
  std::size_t brokered = 0;
  std::size_t bgp_fallback = 0;
  std::size_t blocked = 0;
  std::size_t unreachable = 0;
  double admitted_volume = 0.0;
  double blocked_volume = 0.0;

  [[nodiscard]] std::size_t total() const noexcept {
    return brokered + bgp_fallback + blocked + unreachable;
  }
  [[nodiscard]] double acceptance_rate() const noexcept {
    const auto t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(brokered + bgp_fallback) /
                        static_cast<double>(t);
  }
};

/// Processes flows in order; returns per-flow outcomes plus aggregates.
/// Broker capacity (if set) is consumed by transit volume on brokered paths.
class AdmissionController {
 public:
  AdmissionController(const bsr::graph::CsrGraph& g,
                      const bsr::broker::BrokerSet& brokers, AdmissionConfig config);

  AdmissionOutcome admit(const Flow& flow);

  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<double>& broker_load() const noexcept {
    return load_;
  }

 private:
  [[nodiscard]] bool has_capacity(std::span<const bsr::graph::NodeId> path,
                                  double volume) const;
  void consume(std::span<const bsr::graph::NodeId> path, double volume);

  const bsr::graph::CsrGraph* graph_;
  const bsr::broker::BrokerSet* brokers_;
  AdmissionConfig config_;
  Router router_;
  std::vector<double> load_;
  AdmissionStats stats_;
};

}  // namespace bsr::sim
