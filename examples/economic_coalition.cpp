// Example: is a broker coalition economically viable? (§7 end to end)
//
// A prospective coalition of brokers wants to know:
//   1. what to pay hired transit ASes         -> Nash bargaining,
//   2. what to charge customer ASes           -> Stackelberg equilibrium,
//   3. how to split the revenue internally    -> Shapley values,
//   4. when to stop admitting members         -> marginal-contribution decay.
#include <iostream>

#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "econ/bargaining.hpp"
#include "econ/coalition.hpp"
#include "econ/shapley.hpp"
#include "econ/stackelberg.hpp"
#include "io/env.hpp"
#include "io/table.hpp"
#include "topology/internet.hpp"

int main() {
  const auto env = bsr::io::experiment_env();
  auto config = bsr::topology::InternetConfig{}.scaled(std::min(env.scale, 0.05));
  config.seed = env.seed;
  const auto topo = bsr::topology::make_internet(config);
  const auto& g = topo.graph;

  // 1. Hire prices: Nash bargaining on a (0.99, 4)-graph.
  bsr::econ::BargainingConfig bargaining;
  bargaining.broker_price = 1.0;
  bargaining.transit_cost = 0.1;
  bargaining.beta = 4;
  const auto hire = bsr::econ::solve_bargaining(bargaining);
  std::cout << "1) employee price p_j = " << bsr::io::format_double(hire.price, 3)
            << " per unit (employee margin "
            << bsr::io::format_double(hire.u_employee, 3) << ", coalition margin "
            << bsr::io::format_double(hire.u_broker, 3) << ")\n";

  // 2. Customer pricing: Stackelberg game over 500 heterogeneous ASes.
  bsr::graph::Rng rng(env.seed + 2);
  bsr::econ::StackelbergConfig game;
  for (int i = 0; i < 500; ++i) {
    bsr::econ::CustomerParams c;
    c.v_scale = 0.6 + 0.8 * rng.uniform01();
    c.a0 = 0.1 * rng.uniform01();
    c.a_hat = 0.4 + 0.4 * rng.uniform01();
    c.p_peak = 0.15 + 0.2 * rng.uniform01();
    game.customers.push_back(c);
  }
  const auto eq = bsr::econ::solve_stackelberg(game);
  std::cout << "2) posted price p_B* = " << bsr::io::format_double(eq.price, 3)
            << ", mean adoption a* = " << bsr::io::format_double(eq.mean_adoption, 3)
            << ", coalition profit = " << bsr::io::format_double(eq.broker_utility, 1)
            << '\n';

  // 3. Revenue split among the founding brokers: exact Shapley values.
  const auto founders = bsr::broker::greedy_mcb(g, 8).brokers;
  bsr::econ::CoalitionParams params;
  params.revenue_per_connectivity = eq.broker_utility;
  params.operating_cost = 0.0;
  const bsr::econ::CoalitionGame coalition(
      g, founders.members(), params);
  const auto phi =
      bsr::econ::shapley_exact(founders.size(), coalition.characteristic());
  std::cout << "3) Shapley revenue split over " << founders.size()
            << " founders:\n";
  bsr::io::Table split({"broker", "type", "share"});
  double total = 0;
  for (const double p : phi) total += p;
  for (std::size_t j = 0; j < founders.size(); ++j) {
    split.row()
        .cell(std::uint64_t{founders.members()[j]})
        .cell(std::string(
            bsr::topology::to_string(topo.meta[founders.members()[j]].type)))
        .percent(total > 0 ? phi[j] / total : 0.0);
  }
  split.print(std::cout);

  // Individual rationality: nobody earns less inside than alone.
  bool rational = true;
  for (std::size_t j = 0; j < founders.size(); ++j) {
    rational &= phi[j] + 1e-9 >= coalition.value(1ull << j);
  }
  std::cout << "   individually rational (Theorem 7): "
            << (rational ? "yes" : "NO") << '\n';

  // 4. Stop signal: marginal value of each additional member.
  const auto candidates = bsr::broker::greedy_mcb(g, 48).brokers;
  bsr::broker::BrokerSet prefix(g.num_vertices());
  double previous = 0.0;
  std::cout << "4) marginal connectivity value of the k-th member:\n   ";
  for (std::size_t k = 1; k <= candidates.size(); ++k) {
    prefix.add(candidates.members()[k - 1]);
    const double value = bsr::broker::saturated_connectivity(g, prefix);
    if ((k & (k - 1)) == 0) {  // powers of two
      std::cout << "k=" << k << ": +"
                << bsr::io::format_percent(value - previous) << "%  ";
    }
    previous = value;
  }
  std::cout << "\n   (the coalition should stop growing once the marginal "
               "value no longer covers a member's operating cost)\n";
  return 0;
}
