#include "broker/dominated.hpp"

#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_complete;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

/// Naive saturated connectivity: pairwise BFS over the dominated subgraph.
double naive_saturated(const CsrGraph& g, const BrokerSet& b) {
  const NodeId n = g.num_vertices();
  if (n < 2) return 0.0;
  bsr::graph::BfsRunner runner(n);
  const auto filter = dominated_edge_filter(b);
  std::uint64_t connected = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto dist = runner.run_filtered(g, u, filter);
    for (NodeId v = u + 1; v < n; ++v) {
      if (dist[v] != bsr::graph::kUnreachable) ++connected;
    }
  }
  return static_cast<double>(connected) /
         (static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(Dominated, FilterAdmitsBrokerEdgesOnly) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  const auto filter = dominated_edge_filter(b);
  EXPECT_TRUE(filter(0, 1));
  EXPECT_TRUE(filter(1, 2));
  EXPECT_FALSE(filter(2, 3));
}

TEST(Dominated, StarCenterConnectsEverything) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(0);
  EXPECT_DOUBLE_EQ(saturated_connectivity(g, b), 1.0);
  EXPECT_EQ(largest_dominated_component(g, b), 8u);
}

TEST(Dominated, LeafBrokerConnectsOnlyItsEdge) {
  const CsrGraph g = make_star(8);
  BrokerSet b(8);
  b.add(3);
  // Only pair (0, 3) connected: 1 of 28 pairs.
  EXPECT_NEAR(saturated_connectivity(g, b), 1.0 / 28.0, 1e-12);
  EXPECT_EQ(largest_dominated_component(g, b), 2u);
}

TEST(Dominated, EmptyBrokerSetZeroConnectivity) {
  const CsrGraph g = make_complete(5);
  EXPECT_DOUBLE_EQ(saturated_connectivity(g, BrokerSet(5)), 0.0);
  EXPECT_EQ(largest_dominated_component(g, BrokerSet(5)), 1u);
}

TEST(Dominated, MidPathBrokerSplitsLongPath) {
  const CsrGraph g = make_path(7);
  BrokerSet b(7);
  b.add(3);
  // Active edges: 2-3, 3-4. Component {2,3,4}: 3 pairs of 21.
  EXPECT_NEAR(saturated_connectivity(g, b), 3.0 / 21.0, 1e-12);
}

TEST(Dominated, DistanceCdfUsesDominatedPaths) {
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  b.add(1);
  b.add(3);  // all edges dominated -> same distances as free routing
  Rng rng(1);
  const auto cdf = dominated_distance_cdf(g, b, rng, 100);
  EXPECT_NEAR(cdf.reachable, 1.0, 1e-12);
}

TEST(Dominated, BrokerOnlyShareCompleteGraph) {
  const CsrGraph g = make_complete(6);
  BrokerSet b(6);
  b.add(0);
  b.add(1);
  Rng rng(2);
  const auto share = broker_only_share(g, b, rng, 2000);
  // Every pair adjacent to broker 0 or 1 (complete graph) and brokers are
  // connected: all connected pairs are broker-only.
  EXPECT_GT(share.pairs_connected, 0u);
  EXPECT_DOUBLE_EQ(share.broker_only, 1.0);
}

TEST(Dominated, BrokerOnlyShareDetectsNonBrokerTransit) {
  // Path 0-1-2-3-4 with brokers {1, 3}: pair (0, 4) needs non-broker 2.
  const CsrGraph g = make_path(5);
  BrokerSet b(5);
  b.add(1);
  b.add(3);
  Rng rng(3);
  const auto share = broker_only_share(g, b, rng, 4000);
  EXPECT_GT(share.pairs_connected, 0u);
  EXPECT_LT(share.broker_only, 1.0);
  EXPECT_GT(share.broker_only, 0.0);
}

TEST(Dominated, SizeMismatchThrows) {
  const CsrGraph g = make_path(4);
  EXPECT_THROW(saturated_connectivity(g, BrokerSet(5)), std::invalid_argument);
}

class DominatedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominatedPropertyTest, ExactMatchesNaivePairwiseBfs) {
  const CsrGraph g = make_connected_random(30, 0.1, GetParam());
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 5; ++trial) {
    BrokerSet b(g.num_vertices());
    const auto count = 1 + rng.uniform(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      b.add(static_cast<NodeId>(rng.uniform(g.num_vertices())));
    }
    EXPECT_NEAR(saturated_connectivity(g, b), naive_saturated(g, b), 1e-12);
  }
}

TEST_P(DominatedPropertyTest, MoreBrokersNeverHurt) {
  const CsrGraph g = make_connected_random(30, 0.1, GetParam());
  Rng rng(GetParam() + 200);
  BrokerSet b(g.num_vertices());
  double previous = 0.0;
  for (int i = 0; i < 10; ++i) {
    b.add(static_cast<NodeId>(rng.uniform(g.num_vertices())));
    const double current = saturated_connectivity(g, b);
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatedPropertyTest,
                         ::testing::Values(7, 77, 777, 7777));

}  // namespace
}  // namespace bsr::broker
