// Builds the uninstrumented kernel twins declared in bare_kernels.hpp by
// recompiling the library sources with the telemetry compiled out:
//
//   * BSR_OBS_FORCE_OFF makes obs/stats.hpp (and everything layered on it —
//     journal, sketches, query tracing) expand every BSR_* macro to an empty
//     statement in this TU only, exactly as a -DBSR_STATS=OFF build would.
//   * The object-like renames below give the recompiled entry points (and the
//     instrumented templates they instantiate) distinct symbol names.
//     Without them the bare engine::bfs<FaultAwareFilter> instantiation would
//     share a linkonce symbol with the instrumented one from perf_obs.cpp and
//     the linker would quietly collapse both sides of the overhead comparison
//     into whichever copy it picked. The route-service renames additionally
//     keep this TU's out-of-line definitions (RouteService, RebuildScheduler,
//     to_string, answer_digest, audit_answer) from colliding with
//     libbsr_sim's at link time.
//   * All renames sit before the FIRST include, so every header — std
//     headers included — sees them consistently; `to_string` in particular
//     renames both std::to_string's inline definitions and their call sites
//     inside this TU, which is self-consistent and emits no shared symbol.
//
// Everything else the kernels touch is either macro-free inline code
// (identical tokens in both TUs, so shared instantiations are benign) or
// out-of-line library code (connected_components, coverage, the rollback
// union-find) that both the bare and instrumented paths call identically, so
// its cost cancels out of the overhead delta.
#define BSR_OBS_FORCE_OFF 1
#define bfs bare_bfs
#define bfs_dir_opt bare_bfs_dir_opt
#define unite_star bare_unite_star
#define unite_edges bare_unite_edges
#define maxsg bare_maxsg
#define RouteService BareRouteService
#define RebuildScheduler BareRebuildScheduler
#define to_string bare_to_string
#define answer_digest bare_answer_digest
#define audit_answer bare_audit_answer
#include "broker/maxsg.cpp"
#include "sim/route_service.cpp"
#undef bfs
#undef bfs_dir_opt
#undef unite_star
#undef unite_edges
#undef maxsg
#undef RouteService
#undef RebuildScheduler
#undef to_string
#undef answer_digest
#undef audit_answer

#include "bare_kernels.hpp"
#include "route_lifecycle.hpp"

namespace bare {

void bfs(const bsr::graph::CsrGraph& g, bsr::graph::NodeId source,
         bsr::graph::engine::Workspace& ws,
         bsr::graph::engine::FaultAwareFilter admit) {
  bsr::graph::engine::bare_bfs(g, source, ws, admit);
}

bsr::broker::MaxSgResult maxsg(const bsr::graph::CsrGraph& g, std::uint32_t k) {
  return bsr::broker::bare_maxsg(g, k);
}

bsr::bench::RouteLifecycleResult route_lifecycle(
    const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
    std::span<const bsr::sim::Flow> flows, int serve_reps) {
  return bsr::bench::run_route_lifecycle<bsr::sim::BareRouteService,
                                         bsr::sim::RouteAnswer>(
      g, brokers, flows, serve_reps);
}

}  // namespace bare
