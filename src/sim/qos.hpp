// Per-hop QoS model.
//
// The paper's premise: a hop whose endpoint includes a broker is under SLA
// supervision and meets its QoS target; an unsupervised hop degrades with
// some probability (no agreement beyond the first hop in BGP). E2E success
// is the product over hops. This quantifies the value of dominating paths:
// a fully dominated path succeeds with probability 1 in the model.
#pragma once

#include <cstdint>
#include <span>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::sim {

struct QosModel {
  /// Probability an unsupervised (non-dominated) hop still meets QoS.
  double unsupervised_hop_success = 0.8;
  /// Probability a supervised (dominated) hop meets QoS — 1.0 in the
  /// paper's idealization; lower values model imperfect SLAs.
  double supervised_hop_success = 1.0;
};

/// E2E QoS success probability of a path under the model.
/// A trivial (<= 1 vertex) path succeeds with probability 1.
[[nodiscard]] double path_qos_success(const QosModel& model,
                                      const bsr::broker::BrokerSet& brokers,
                                      std::span<const bsr::graph::NodeId> path);

/// Number of hops of `path` not dominated by the broker set.
[[nodiscard]] std::uint32_t undominated_hops(const bsr::broker::BrokerSet& brokers,
                                             std::span<const bsr::graph::NodeId> path);

}  // namespace bsr::sim
