#include "graph/union_find.hpp"

#include <numeric>

namespace bsr::graph {

UnionFind::UnionFind(NodeId n) { reset(n); }

void UnionFind::reset(NodeId n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
  size_.assign(n, 1);
  num_components_ = n;
}

}  // namespace bsr::graph
