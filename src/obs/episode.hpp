// Causal episode reconstruction: fault-lifecycle stitching and critical-path
// latency decomposition over the flight-recorder journal.
//
// The journal (journal.hpp) records *events*; the qtrace rings (qtrace.hpp)
// record *answers*. Neither answers the operator question "for episode 17,
// how much of the 4.2 s of exposure was detection lag vs rebuild backoff vs
// rebuild execution, and which queries did it hurt?". The reconstructor here
// folds one pass over a journal snapshot (plus an optional qtrace snapshot)
// into per-episode causal records, one state machine per correlation id:
//
//   * `health` episodes follow one broker's failure lifecycle through the
//     HealthMonitor correlation id: churn fault (if stitchable) ->
//     pending probe misses -> suspect -> quarantine (repair attempts ride
//     along) -> probation -> recover.
//   * `serve` episodes follow one degradation of the route-serving oracle,
//     keyed by the truth version the opening degrade carried: churn fault ->
//     degrade -> rebuild attempt chain (start / crash / discard / give-up,
//     each retry separated by its backoff wait) -> epoch publish.
//
// Each episode's simulated-time exposure [open, close] is partitioned into
// named phases by label switching: every boundary event closes the interval
// since the previous boundary under the current label and switches labels.
// The partition is exact by construction — phase durations are accumulated
// from the same endpoints the span is computed from, and the closing step
// folds any floating-point residual into the largest phase — so
// `phase_total() == span()` holds bit-exactly (test-enforced).
//
//   phase     health meaning                    serve meaning
//   -------   -------------------------------   ---------------------------
//   detect    fault fired -> suspect declared   fault fired -> degrade
//   react     suspect dwell (miss accrual)      degrade -> first rebuild start
//   queue     quarantine dwell incl. reprobe    backoff waits between rebuild
//             backoff and repair attempts       attempts (and give-up dwell)
//   exec      (structurally 0: repairs are      rebuild execution intervals
//             instantaneous in the repair plane)
//   drain     probation hysteresis dwell        (structurally 0: a publish
//                                               restores freshness atomically
//                                               in the single-vantage oracle;
//                                               reserved for multi-vantage
//                                               convergence)
//
// Degraded answers attribute to serve episodes through the qtrace
// correlation id: a non-fresh row whose time falls inside [open, close] and
// whose correlation (the truth version the epoch lagged behind) is at or
// past the episode's opening truth version counts toward the episode.
//
// Truncation vs malformation: a ring that dropped records evicts oldest
// first, so an episode whose opener was evicted surfaces as a mid-chain
// orphan event. When the journal reports drops, orphans open *truncated*
// episodes (flagged, never trusted for phase sums); when it reports none,
// an orphan is a producer contract violation and counts as `malformed`.
//
// Reconstruction runs on single-threaded control paths and is deterministic:
// the journal snapshot is already in export order, so the same snapshot
// yields the same report byte-for-byte at any BSR_THREADS value. The module
// stays linkable under BSR_STATS=OFF (journals are plain data); only the
// counter/sketch side effects inside compile away.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "obs/journal.hpp"
#include "obs/qtrace.hpp"

namespace bsr::obs {

/// Version tag of the exported JSONL episode schema (the first line of every
/// episode file names it). Bump on breaking changes to record layout or
/// phase semantics.
inline constexpr std::string_view kEpisodeSchema = "bsr-episodes/1";

enum class EpisodeKind : std::uint8_t { kHealth, kServe };

[[nodiscard]] std::string_view to_string(EpisodeKind kind) noexcept;

/// Critical-path phase labels, in canonical (causal) order.
enum class EpisodePhase : std::uint8_t {
  kDetect,
  kReact,
  kQueue,
  kExec,
  kDrain,
  kCount
};

inline constexpr std::size_t kNumEpisodePhases =
    static_cast<std::size_t>(EpisodePhase::kCount);

[[nodiscard]] std::string_view to_string(EpisodePhase phase) noexcept;

/// One contiguous interval of an episode spent under one phase label, in
/// journal order. Slices partition [open_time, close_time] exactly; the
/// Perfetto exporter renders them as the episode's track.
struct PhaseSlice {
  EpisodePhase phase = EpisodePhase::kDetect;
  double begin = 0.0;
  double end = 0.0;
};

/// One reconstructed fault episode.
struct Episode {
  EpisodeKind kind = EpisodeKind::kHealth;
  /// health: the HealthMonitor failure-episode correlation id.
  /// serve: the truth version carried by the opening degrade. For truncated
  /// episodes (opener evicted) this is the correlation of the first
  /// surviving event.
  std::uint64_t id = 0;
  /// health: the broker vertex. serve: the serving epoch at open.
  std::uint64_t subject = 0;
  double open_time = 0.0;
  double close_time = 0.0;
  /// False when the journal ended before the terminal event; close_time is
  /// then the journal horizon (time of the last record).
  bool closed = false;
  /// True when the episode's opener was evicted by the ring: phase sums
  /// cover only the surviving suffix.
  bool truncated = false;

  /// Exposure per phase, indexed by EpisodePhase. Sums exactly to span().
  std::array<double, kNumEpisodePhases> phases{};
  /// The exact label-switching partition of [open_time, close_time]
  /// (zero-length intervals omitted). Not serialized to JSONL.
  std::vector<PhaseSlice> slices;

  /// serve: rebuild starts. health: repair attempts during quarantine.
  std::uint32_t attempts = 0;
  /// serve: rebuild crashes + stale discards. health: repair attempts that
  /// recruited no standby.
  std::uint32_t failures = 0;
  /// serve only: the scheduler exhausted its budget during the episode.
  bool gave_up = false;

  /// Degraded answers attributed from the qtrace snapshot (serve only).
  std::uint64_t stale_served = 0;
  std::uint64_t shedded = 0;
  std::uint64_t refused = 0;

  [[nodiscard]] double span() const noexcept { return close_time - open_time; }
  [[nodiscard]] double phase_total() const noexcept {
    double total = 0.0;
    for (const double d : phases) total += d;
    return total;
  }
};

struct EpisodeReport {
  /// Sorted by (open_time, kind, id) — deterministic for a fixed journal.
  std::vector<Episode> episodes;
  std::uint64_t journal_dropped = 0;
  std::uint64_t qtrace_dropped = 0;
  /// Lifecycle-contract violations observed with a drop-free journal:
  /// reopened correlation ids, events after a terminal, orphan mid-chain
  /// events. Always 0 for journals produced by the current sim libraries.
  std::uint64_t malformed = 0;
  /// Non-fresh qtrace rows carrying an episode correlation that no
  /// reconstructed serve episode claimed (e.g. rows outside every window).
  std::uint64_t unattributed = 0;

  [[nodiscard]] bool truncated() const noexcept {
    return journal_dropped != 0 || qtrace_dropped != 0;
  }
};

/// Folds one journal snapshot (and optionally a qtrace snapshot for
/// degraded-answer attribution) into the episode report. Pure with respect
/// to its inputs; as side effects it bumps the obs.episode.* counters and
/// feeds closed episodes' phase durations (in milli-time-units) into the
/// obs.episode.* sketch slots — both compiled out under BSR_STATS=OFF.
[[nodiscard]] EpisodeReport episodes_from_journal(
    const Journal& journal, const QtraceSnapshot* qtrace = nullptr);

}  // namespace bsr::obs
