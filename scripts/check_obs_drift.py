#!/usr/bin/env python3
"""Counter-drift tripwire for the telemetry plane.

Compares the deterministic work-unit counters in a BENCH_obs.json produced by
bench/perf_obs against the checked-in baseline
(bench/baselines/obs_counters.json). The counters are functions of the seed
and scale alone — identical on every host and at every BSR_THREADS value — so
any drift beyond the baseline's tolerance means the algorithms started doing
different work (or counting it differently) without the baseline being
updated deliberately.

Baseline entries come in two shapes:

  * scalar — a plain counter total, compared within tolerance_pct;
  * object — a histogram or quantile-sketch distribution ({"buckets":
    [[index, count], ...]} plus scalar fields like "total" or "count"/"sum").
    Scalar fields compare within tolerance; the bucket *index set* must match
    exactly (an appearing or vanishing bucket means the distribution's shape
    changed, not just its magnitude) and per-bucket counts compare within
    tolerance. The name is looked up in the run's "histograms" then
    "sketches" maps.

A baseline key that has *disappeared* from the snapshot (a renamed or removed
counter, or a renamed run) is a hard failure, not a skip: silently checking
fewer counters than the baseline names would let the tripwire rot into a
no-op. Likewise a baseline that names no counters at all fails loudly.

Usage: check_obs_drift.py <BENCH_obs.json> <baseline.json>
Exit codes: 0 within tolerance, 1 drift/missing-key detected, 2 bad input.
"""

import json
import sys


def scalar_drift(expected, actual):
    """Relative drift of a scalar, treating a zero expectation as exact."""
    if expected:
        return abs(actual - expected) / expected
    return float(actual != expected)


def check_distribution(run_name, name, expected, actual, tolerance, failures):
    """Compare one dict-valued baseline entry; returns values checked."""
    checked = 0
    for field, want in expected.items():
        if field == "buckets":
            continue
        got = actual.get(field)
        if got is None:
            failures.append(f"{run_name}: {name} lost its '{field}' field")
            continue
        checked += 1
        drift = scalar_drift(want, got)
        marker = "ok" if drift <= tolerance else "DRIFT"
        print(f"  {marker:5s} {run_name}/{name}.{field}: "
              f"expected {want}, got {got} ({drift * 100:+.2f}%)")
        if drift > tolerance:
            failures.append(f"{run_name}: {name}.{field} drifted "
                            f"{drift * 100:.2f}% (expected {want}, got {got})")
    if "buckets" not in expected:
        return checked
    want_buckets = {int(b): c for b, c in expected["buckets"]}
    got_buckets = {int(b): c for b, c in actual.get("buckets", [])}
    added = sorted(set(got_buckets) - set(want_buckets))
    removed = sorted(set(want_buckets) - set(got_buckets))
    if added or removed:
        failures.append(
            f"{run_name}: {name} bucket set changed — the distribution moved "
            f"octaves, not just counts (new buckets: {added or 'none'}, "
            f"vanished buckets: {removed or 'none'})")
        print(f"  DRIFT {run_name}/{name}.buckets: index set mismatch")
        return checked + 1
    worst = 0.0
    for b, want in want_buckets.items():
        worst = max(worst, scalar_drift(want, got_buckets[b]))
    marker = "ok" if worst <= tolerance else "DRIFT"
    print(f"  {marker:5s} {run_name}/{name}.buckets: {len(want_buckets)} "
          f"buckets, worst count drift {worst * 100:+.2f}%")
    if worst > tolerance:
        failures.append(f"{run_name}: {name} bucket counts drifted up to "
                        f"{worst * 100:.2f}%")
    return checked + 1


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            bench = json.load(f)
        with open(sys.argv[2]) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_obs_drift: {err}", file=sys.stderr)
        return 2

    if baseline.get("obs_baseline_schema") != 1:
        print("check_obs_drift: unknown baseline schema", file=sys.stderr)
        return 2
    if not isinstance(baseline.get("tolerance_pct"), (int, float)):
        print("check_obs_drift: baseline is missing a numeric 'tolerance_pct'",
              file=sys.stderr)
        return 2
    if not isinstance(baseline.get("runs"), dict):
        print("check_obs_drift: baseline is missing its 'runs' object",
              file=sys.stderr)
        return 2
    if bench.get("bench_schema") != "bsr-bench/1":
        print(f"check_obs_drift: {sys.argv[1]} is not a bsr-bench/1 file "
              f"(bench_schema = {bench.get('bench_schema')!r})",
              file=sys.stderr)
        return 2

    tolerance = baseline["tolerance_pct"] / 100.0
    runs = {run.get("name"): run for run in bench.get("runs", [])}

    failures = []
    checked = 0
    for run_name, expected_counters in baseline["runs"].items():
        run = runs.get(run_name)
        if run is None:
            failures.append(
                f"run '{run_name}' missing from {sys.argv[1]} — renamed or "
                f"removed? (snapshot has: {', '.join(sorted(filter(None, runs))) or 'none'})")
            continue
        actual_counters = run.get("counters", {})
        for counter, expected in expected_counters.items():
            if isinstance(expected, dict):
                actual = run.get("histograms", {}).get(counter)
                if actual is None:
                    actual = run.get("sketches", {}).get(counter)
                if actual is None:
                    failures.append(
                        f"{run_name}: distribution '{counter}' missing from "
                        f"the snapshot's histograms/sketches — renamed or "
                        f"removed? A baseline key that no longer exists must "
                        f"be updated deliberately, not skipped")
                    continue
                checked += check_distribution(run_name, counter, expected,
                                              actual, tolerance, failures)
                continue
            actual = actual_counters.get(counter)
            if actual is None:
                failures.append(
                    f"{run_name}: counter '{counter}' missing from the "
                    f"snapshot — renamed or removed? A baseline key that no "
                    f"longer exists must be updated deliberately, not skipped")
                continue
            checked += 1
            drift = scalar_drift(expected, actual)
            marker = "ok" if drift <= tolerance else "DRIFT"
            print(f"  {marker:5s} {run_name}/{counter}: "
                  f"expected {expected}, got {actual} ({drift * 100:+.2f}%)")
            if drift > tolerance:
                failures.append(
                    f"{run_name}: {counter} drifted {drift * 100:.2f}% "
                    f"(expected {expected}, got {actual})")

    if checked == 0 and not failures:
        failures.append("baseline names no counters at all — the tripwire "
                        "checked nothing")
    if failures:
        print(f"\ncheck_obs_drift: {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("If the work change is intentional, regenerate the baseline "
              "(see its 'comment' field).", file=sys.stderr)
        return 1
    print(f"check_obs_drift: {checked} counters within "
          f"{baseline['tolerance_pct']}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
