#include "broker/pds.hpp"

#include <bit>
#include <stdexcept>

#include "broker/coverage.hpp"
#include "broker/maxsg.hpp"
#include "broker/verify.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

bool is_path_dominating_set(const CsrGraph& g, const BrokerSet& b) {
  if (g.num_vertices() == 0) return true;
  if (b.empty()) return g.num_vertices() <= 1;
  if (coverage(g, b) != g.num_vertices()) return false;
  return has_pairwise_guarantee(g, b);
}

std::optional<BrokerSet> solve_pds_exact(const CsrGraph& g, std::uint32_t k) {
  const NodeId n = g.num_vertices();
  if (n > 22) throw std::invalid_argument("solve_pds_exact: graph too large");
  if (n <= 1) return BrokerSet(n);

  // Enumerate subsets in increasing popcount order by looping sizes; the
  // first hit is a minimum witness.
  const std::uint64_t limit = 1ull << n;
  for (std::uint32_t size = 1; size <= std::min<std::uint32_t>(k, n); ++size) {
    for (std::uint64_t bits = 0; bits < limit; ++bits) {
      if (static_cast<std::uint32_t>(std::popcount(bits)) != size) continue;
      BrokerSet candidate(n);
      for (NodeId v = 0; v < n; ++v) {
        if (bits & (1ull << v)) candidate.add(v);
      }
      if (is_path_dominating_set(g, candidate)) return candidate;
    }
  }
  return std::nullopt;
}

std::optional<BrokerSet> solve_pds_greedy(const CsrGraph& g, std::uint32_t k) {
  if (g.num_vertices() <= 1) return BrokerSet(g.num_vertices());
  MaxSgOptions options;
  options.stop_when_dominating = true;
  const auto result = maxsg(g, k, options);
  if (is_path_dominating_set(g, result.brokers)) return result.brokers;
  return std::nullopt;
}

}  // namespace bsr::broker
