// Graphviz DOT export — the plotting backend for Fig. 1 / Fig. 4 style
// layouts.
//
// The paper visualizes the AS topology (scale-free, IXPs at core and edge)
// and broker placements (DB crowding the core vs MaxSG covering the ring).
// This writer emits a DOT document with brokers highlighted and node types
// color-coded; render with `sfdp -Tsvg` for large graphs. For 52k vertices
// the file is huge, so a sampled-subgraph export (ego sample around hubs)
// is provided as well.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "broker/broker_set.hpp"
#include "graph/rng.hpp"
#include "topology/internet.hpp"

namespace bsr::io {

struct DotStyle {
  bool color_by_type = true;    // T/A, content, enterprise, IXP palette
  bool highlight_brokers = true;
  std::string layout = "sfdp";  // emitted as a graph attribute hint
};

/// Writes the whole topology as DOT. `brokers` may be null.
void write_dot(std::ostream& os, const bsr::topology::InternetTopology& topo,
               const bsr::broker::BrokerSet* brokers = nullptr,
               const DotStyle& style = {});

/// Ego-sampled subgraph export: takes the `hubs` highest-degree vertices
/// plus `ring` random low-degree vertices and all edges among the selection
/// — small enough to render while preserving the core/edge contrast of
/// Fig. 1. Returns the number of exported vertices.
std::size_t write_dot_sample(std::ostream& os,
                             const bsr::topology::InternetTopology& topo,
                             const bsr::broker::BrokerSet* brokers,
                             std::size_t hubs, std::size_t ring,
                             bsr::graph::Rng& rng, const DotStyle& style = {});

}  // namespace bsr::io
