// The Fig. 6 business model as an executable ledger.
//
// The paper's Fig. 6 illustrates the payment flow: customer ASes pay the
// coalition B for routed traffic (both the source and the destination side
// pay, hence the 2·p_B in Eq. 9); B pays hired non-broker "employee" ASes
// the bargained price p_j for transit they provide; brokers split the
// residual profit. This module executes that flow for a batch of routed
// flows and checks the books balance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "sim/demand.hpp"

namespace bsr::econ {

struct LedgerConfig {
  double customer_price = 1.0;   // p_B per unit volume, charged at BOTH ends
  double employee_price = 0.5;   // p_j per unit volume per hired transit AS
  double transit_cost = 0.05;    // c: every transit node's own routing cost
};

struct Ledger {
  double customer_payments = 0.0;   // inflow: 2 p_B Σ volume
  double employee_payouts = 0.0;    // outflow to hired non-broker transits
  double broker_transit_cost = 0.0; // brokers' own cost of carried traffic
  double coalition_profit = 0.0;    // inflow - outflows
  std::vector<double> broker_revenue;  // per-vertex share of the profit,
                                       // proportional to transit volume
  std::size_t flows_routed = 0;
  std::size_t flows_unroutable = 0;
  std::size_t employee_hops = 0;    // hops carried by hired non-brokers

  /// Books must balance: inflow = payouts + costs + profit.
  [[nodiscard]] bool balanced(double tolerance = 1e-6) const;
};

/// Routes every flow on the dominated plane (shortest dominating path) and
/// accounts the money. Non-broker transit vertices on a dominating path are
/// the hired employees (the AS-5 role in Fig. 6). Unroutable flows are
/// skipped and counted. Throws std::invalid_argument on bad prices.
[[nodiscard]] Ledger settle_flows(const bsr::graph::CsrGraph& g,
                                  const bsr::broker::BrokerSet& brokers,
                                  std::span<const sim::Flow> flows,
                                  const LedgerConfig& config = {});

}  // namespace bsr::econ
