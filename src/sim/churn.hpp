// Event-driven broker-churn simulation.
//
// Ties the resilience machinery into a time series: brokers depart with an
// exponential rate and the coalition repairs itself periodically with a
// bounded replacement budget. Tracks the connectivity trajectory — the
// operator's "how bad does it get between maintenance windows" question.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::sim {

struct ChurnConfig {
  /// Mean broker departures per time unit.
  double departure_rate = 1.0;
  /// Repairs happen every `repair_interval` time units...
  double repair_interval = 10.0;
  /// ...adding up to this many replacement brokers per repair.
  std::uint32_t repair_budget = 5;
  double horizon = 100.0;  // simulated time units
};

struct ChurnEvent {
  double time = 0.0;
  enum class Kind : std::uint8_t { kDeparture, kRepair } kind = Kind::kDeparture;
  std::size_t brokers_after = 0;
  double connectivity_after = 0.0;
};

struct ChurnResult {
  std::vector<ChurnEvent> events;
  double min_connectivity = 1.0;
  double mean_connectivity = 0.0;  // time-weighted
  std::size_t departures = 0;
  std::size_t repairs = 0;
  std::size_t replacements_added = 0;
};

/// Simulates churn on `initial` brokers over the horizon. Deterministic in
/// rng. Throws std::invalid_argument on non-positive rates/intervals.
[[nodiscard]] ChurnResult simulate_churn(const bsr::graph::CsrGraph& g,
                                         const bsr::broker::BrokerSet& initial,
                                         const ChurnConfig& config,
                                         bsr::graph::Rng& rng);

}  // namespace bsr::sim
