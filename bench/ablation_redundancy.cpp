// Ablation: proactive r-redundant selection vs reactive repair.
//
// Plain MaxSG optimizes no-failure coverage and leans on the repair loop to
// patch holes after brokers die — today's default. robust_maxsg instead
// maximizes the *surviving* pair count under an explicit adversary (any r
// broker failures, or any single correlated IXP outage). This ablation asks
// what that foresight buys under the health-churn simulation, where failures
// go undetected for a probing delay: the promised-vs-realized misrouting
// exposure (broker/robust.hpp), the share of departures absorbed outright,
// the repair budget actually consumed, and the time to recover severed
// pairs. Three fault schedules (different seeds, same process) keep one
// lucky draw from deciding the comparison; the bench exits nonzero unless
// the r-redundant set strictly reduces misrouting exposure on at least one
// schedule. Also self-checks determinism: the robust selection must be
// bit-identical at 1 and 4 engine threads.
//
// Emits BENCH_redundancy.json (override with BENCH_REDUNDANCY_JSON).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "broker/robust.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "sim/churn.hpp"
#include "sim/health.hpp"

namespace {

struct SchedulePoint {
  std::uint64_t seed = 0;
  std::string selection;
  bsr::sim::HealthChurnResult churn;
};

}  // namespace

int main() {
  auto ctx = bsr::bench::make_context("Ablation: r-redundant broker selection");
  const auto& g = ctx.topo.graph;
  bsr::bench::Harness harness("ablation_redundancy", ctx);

  // Robust selection enumerates C(|B|, r) failure scenarios per round, so
  // the budget stays deliberately small relative to the coverage benches.
  // Small budgets are also where redundancy has teeth: with few brokers each
  // one is load-bearing, so the robust and plain criteria actually diverge
  // (at large k the greedy's hub picks are incidentally redundant already).
  const std::uint32_t k = ctx.env.scaled(24, 6);

  std::vector<bsr::graph::FailureGroup> groups;
  for (bsr::graph::NodeId v = ctx.topo.num_ases; v < ctx.topo.num_vertices(); ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }

  // --- selections ----------------------------------------------------------
  bsr::broker::BrokerSet plain(g.num_vertices());
  harness.run("select.plain", [&] { plain = bsr::broker::maxsg(g, k).brokers; });

  bsr::broker::RobustResult robust1, robust2, robustg;
  harness.run("select.robust.r1", [&] {
    bsr::broker::RobustOptions opts;
    opts.redundancy = 1;
    robust1 = bsr::broker::robust_maxsg(g, k, opts);
  });
  harness.run("select.robust.r2", [&] {
    bsr::broker::RobustOptions opts;
    opts.redundancy = 2;
    robust2 = bsr::broker::robust_maxsg(g, k, opts);
  });
  harness.run("select.robust.groups", [&] {
    bsr::broker::RobustOptions opts;
    opts.mode = bsr::broker::RobustMode::kFailureGroups;
    opts.groups = groups;
    robustg = bsr::broker::robust_maxsg(g, k, opts);
  });

  // --- determinism self-check: bit-identical at 1 and 4 threads ------------
  const int saved_threads = bsr::graph::engine::num_threads();
  bsr::broker::RobustOptions det_opts;
  det_opts.redundancy = 2;
  bsr::graph::engine::set_num_threads(1);
  const auto det1 = bsr::broker::robust_maxsg(g, k, det_opts);
  bsr::graph::engine::set_num_threads(4);
  const auto det4 = bsr::broker::robust_maxsg(g, k, det_opts);
  bsr::graph::engine::set_num_threads(saved_threads);
  const bool deterministic =
      std::ranges::equal(det1.brokers.members(), det4.brokers.members()) &&
      det1.surviving_curve == det4.surviving_curve &&
      det1.surviving_pairs == det4.surviving_pairs;
  std::cout << "robust selection bit-identical at 1 vs 4 threads: "
            << (deterministic ? "yes" : "NO") << "\n";

  // --- static worst-case table ---------------------------------------------
  const double total_pairs = static_cast<double>(g.num_vertices()) *
                             static_cast<double>(g.num_vertices() - 1) / 2.0;
  const auto pct = [&](std::uint64_t pairs) {
    return static_cast<double>(pairs) / total_pairs;
  };
  struct Row {
    const char* name;
    const bsr::broker::BrokerSet* set;
  };
  const Row rows[] = {{"maxsg (plain)", &plain},
                      {"robust r=1", &robust1.brokers},
                      {"robust r=2", &robust2.brokers},
                      {"robust groups", &robustg.brokers}};
  bsr::io::Table table({"selection", "members", "nominal", "surv r=1",
                        "surv r=2", "surv 1 group"});
  for (const Row& row : rows) {
    const auto& b = *row.set;
    table.row()
        .cell(row.name)
        .cell(static_cast<std::uint64_t>(b.size()))
        .percent(bsr::broker::saturated_connectivity(g, b))
        .percent(pct(bsr::broker::worst_case_surviving_pairs(g, b, 1)))
        .percent(pct(bsr::broker::worst_case_surviving_pairs(g, b, 2)))
        .percent(pct(bsr::broker::worst_case_surviving_pairs(
            g, b, std::span<const bsr::graph::FailureGroup>(groups))));
  }
  table.print(std::cout);

  // --- churn ablation: does redundancy beat reactive repair? ---------------
  // Mild regime: ~one broker down at a time (rate x downtime ~= 1.2
  // concurrent outages), so absorbed-vs-exposed classification and recovery
  // episodes are both exercised — a blackout-level rate degenerates every
  // metric to "everything is down".
  bsr::sim::HealthChurnConfig churn_cfg;
  churn_cfg.departure_rate = 0.15;
  churn_cfg.mean_return_time = 8.0;
  churn_cfg.horizon = 100.0;
  bsr::sim::LinkChurnConfig link_cfg;  // broker-vertex churn only
  bsr::sim::HealthConfig health;
  health.probe_interval = 1.0;
  bsr::sim::RepairPolicy repair;
  repair.budget = 2;

  // Same seed => same forked fault stream. Both selections have exactly k
  // members, and victims are drawn *by member index*, so the two runs replay
  // structurally aligned damage: the i-th selected broker dies at the same
  // instant in both. The comparison isolates what the selection criterion
  // bought, not schedule luck.
  std::vector<SchedulePoint> points;
  std::size_t improved = 0, schedules = 0;
  bsr::io::Table ctable({"schedule", "selection", "exposure", "absorbed",
                         "exposed", "repairs used", "mean recover"});
  for (const std::uint64_t seed_offset : {70u, 71u, 72u}) {
    const std::uint64_t seed = ctx.env.seed + seed_offset;
    const auto run_one = [&](const std::string& name,
                             const bsr::broker::BrokerSet& set) {
      SchedulePoint pt;
      pt.seed = seed;
      pt.selection = name;
      harness.run("churn." + name + ".s" + std::to_string(seed_offset), [&] {
        bsr::graph::Rng rng(seed);
        pt.churn = bsr::sim::simulate_churn_with_health(
            g, set, churn_cfg, link_cfg, groups, health, repair, rng);
      });
      ctable.row()
          .cell("s" + std::to_string(seed_offset))
          .cell(name)
          .cell(bsr::io::format_double(pt.churn.misrouting_pair_exposure, 4))
          .cell(static_cast<std::uint64_t>(pt.churn.absorbed_departures))
          .cell(static_cast<std::uint64_t>(pt.churn.exposed_departures))
          .cell(static_cast<std::uint64_t>(pt.churn.replacements_added))
          .cell(bsr::io::format_double(pt.churn.mean_time_to_recover(), 2));
      points.push_back(std::move(pt));
      return points.back().churn.misrouting_pair_exposure;
    };
    const double plain_exposure = run_one("plain", plain);
    const double robust_exposure = run_one("robust.r2", robust2.brokers);
    ++schedules;
    if (robust_exposure < plain_exposure) ++improved;
  }
  ctable.print(std::cout);

  const bool exposure_reduced = improved > 0;
  std::cout << "r-redundant set strictly reduces misrouting exposure on "
            << improved << "/" << schedules << " schedule(s): "
            << (exposure_reduced ? "yes" : "NO") << "\n";
  std::cout << "(takeaway: the proactive set pays a small nominal-coverage "
               "premium to keep a dominating path through the survivors, so "
               "undetected departures mostly stop severing promised pairs — "
               "the reactive baseline leans on repair budget and eats the "
               "exposure while stale views catch up)\n";

  // --- JSON artifact -------------------------------------------------------
  harness.metric("k", static_cast<double>(k));
  harness.metric("deterministic_across_threads", deterministic ? 1.0 : 0.0);
  harness.metric("exposure_reduced_schedules", static_cast<double>(improved));
  harness.metric("schedules", static_cast<double>(schedules));
  harness.metric("plain_surviving_r1",
                 static_cast<double>(bsr::broker::worst_case_surviving_pairs(
                     g, plain, 1)));
  harness.metric("robust1_surviving_r1",
                 static_cast<double>(robust1.surviving_pairs));
  harness.metric("robust2_surviving_r2",
                 static_cast<double>(robust2.surviving_pairs));
  harness.metric("robustg_surviving_group",
                 static_cast<double>(robustg.surviving_pairs));
  std::ostringstream json;
  json << "[\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SchedulePoint& pt = points[i];
    json << "    {\"seed\": " << pt.seed << ", \"selection\": \""
         << pt.selection << "\""
         << ", \"misrouting_pair_exposure\": "
         << pt.churn.misrouting_pair_exposure
         << ", \"absorbed_departures\": " << pt.churn.absorbed_departures
         << ", \"exposed_departures\": " << pt.churn.exposed_departures
         << ", \"replacements_added\": " << pt.churn.replacements_added
         << ", \"recovered_episodes\": " << pt.churn.recovery_times.size()
         << ", \"mean_time_to_recover\": " << pt.churn.mean_time_to_recover()
         << ", \"dead_routable_time\": " << pt.churn.dead_routable_time
         << ", \"mean_believed_connectivity\": "
         << pt.churn.mean_believed_connectivity
         << ", \"mean_oracle_connectivity\": "
         << pt.churn.mean_oracle_connectivity << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]";
  harness.raw_section("schedules", json.str());
  harness.write_json_file("BENCH_redundancy.json", "BENCH_REDUNDANCY_JSON");
  return (exposure_reduced && deterministic) ? 0 : 1;
}
