// Reproduces Fig. 5a — composition of the alliance and broker-only routing.
//
// Paper findings for the 3,540-alliance:
//   * diversified composition (T/A, content, enterprise, IXPs — not a
//     tier-1 monopoly);
//   * more than 90 % of E2E connections are carried by brokers alone,
//     without hiring any non-broker transit.
#include <iostream>

#include "bench_common.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Fig. 5a: alliance composition & broker-only share");
  const auto& g = ctx.topo.graph;
  const std::uint32_t k = ctx.env.scaled(3540, 8);

  const auto alliance = bsr::broker::maxsg(g, k).brokers;

  std::size_t counts[4] = {0, 0, 0, 0};
  std::size_t tier1 = 0;
  for (const auto v : alliance.members()) {
    ++counts[static_cast<int>(ctx.topo.meta[v].type)];
    if (ctx.topo.meta[v].tier == bsr::topology::Tier::kTier1) ++tier1;
  }

  bsr::io::Table table({"Node type", "# in alliance", "share"});
  const auto add = [&](bsr::topology::NodeType type) {
    const auto c = counts[static_cast<int>(type)];
    table.row()
        .cell(std::string(bsr::topology::to_string(type)))
        .cell(static_cast<std::uint64_t>(c))
        .percent(static_cast<double>(c) / alliance.size());
  };
  add(bsr::topology::NodeType::kTransitAccess);
  add(bsr::topology::NodeType::kContent);
  add(bsr::topology::NodeType::kEnterprise);
  add(bsr::topology::NodeType::kIxp);
  table.print(std::cout);
  std::cout << "tier-1 ASes in the alliance: " << tier1 << " of "
            << alliance.size() << " (no tier-1 monopoly)\n";

  bsr::graph::Rng rng(ctx.env.seed + 7);
  const auto share = bsr::broker::broker_only_share(g, alliance, rng, 20000);
  std::cout << "broker-only E2E connections: "
            << bsr::io::format_percent(share.broker_only) << "% of "
            << share.pairs_connected
            << " connected sampled pairs (paper: > 90%)\n";
  return 0;
}
