// Barabási–Albert preferential-attachment graph (Table 3 comparison topology).
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"

namespace bsr::topology {

/// Preferential attachment: starts from a small clique, then each new vertex
/// attaches `edges_per_vertex` edges to existing vertices with probability
/// proportional to degree. Deterministic in seed.
[[nodiscard]] bsr::graph::CsrGraph make_ba(std::uint32_t num_vertices,
                                           std::uint32_t edges_per_vertex,
                                           std::uint64_t seed);

}  // namespace bsr::topology
