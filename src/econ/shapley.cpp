#include "econ/shapley.hpp"

#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bsr::econ {

using bsr::graph::Rng;

std::vector<double> shapley_exact(std::size_t n, const CharacteristicFn& value) {
  if (n == 0 || n > 20) throw std::invalid_argument("shapley_exact: need 1 <= n <= 20");
  const std::uint64_t full = (n == 64) ? ~0ull : ((1ull << n) - 1);

  // Memoize U over all subsets.
  std::vector<double> u(full + 1);
  for (std::uint64_t mask = 0; mask <= full; ++mask) u[mask] = value(mask);

  // Precompute w(s) = s! (n-s-1)! / n! via logs to avoid overflow.
  std::vector<double> log_fact(n + 1, 0.0);
  for (std::size_t i = 2; i <= n; ++i) {
    log_fact[i] = log_fact[i - 1] + std::log(static_cast<double>(i));
  }
  std::vector<double> weight(n);
  for (std::size_t s = 0; s < n; ++s) {
    weight[s] = std::exp(log_fact[s] + log_fact[n - s - 1] - log_fact[n]);
  }

  std::vector<double> phi(n, 0.0);
  for (std::uint64_t mask = 0; mask <= full; ++mask) {
    const auto s = static_cast<std::size_t>(std::popcount(mask));
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1ull << j)) continue;
      phi[j] += weight[s] * (u[mask | (1ull << j)] - u[mask]);
    }
  }
  return phi;
}

ShapleyEstimate shapley_monte_carlo(std::size_t n, const CharacteristicFn& value,
                                    std::size_t permutations, Rng& rng) {
  if (n == 0 || n > 63) {
    throw std::invalid_argument("shapley_monte_carlo: need 1 <= n <= 63");
  }
  if (permutations == 0) {
    throw std::invalid_argument("shapley_monte_carlo: need >= 1 permutation");
  }

  std::vector<double> sum(n, 0.0), sum_sq(n, 0.0);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (std::size_t p = 0; p < permutations; ++p) {
    for (std::size_t i = n; i > 1; --i) {  // Fisher-Yates
      const std::size_t j = rng.uniform(i);
      std::swap(order[i - 1], order[j]);
    }
    std::uint64_t mask = 0;
    double prev = value(0);
    for (const std::size_t j : order) {
      mask |= (1ull << j);
      const double curr = value(mask);
      const double marginal = curr - prev;
      sum[j] += marginal;
      sum_sq[j] += marginal * marginal;
      prev = curr;
    }
  }

  ShapleyEstimate out;
  out.permutations = permutations;
  out.value.resize(n);
  out.std_error.resize(n);
  const auto m = static_cast<double>(permutations);
  for (std::size_t j = 0; j < n; ++j) {
    out.value[j] = sum[j] / m;
    const double variance =
        permutations > 1 ? (sum_sq[j] - sum[j] * sum[j] / m) / (m - 1.0) : 0.0;
    out.std_error[j] = std::sqrt(std::max(0.0, variance) / m);
  }
  return out;
}

namespace {

/// Uniform subset of `pool` with exactly `size` bits (reservoir over bits).
std::uint64_t random_subset_of_size(std::uint64_t pool, std::size_t size, Rng& rng) {
  std::vector<int> bits;
  for (int b = 0; b < 64; ++b) {
    if (pool & (1ull << b)) bits.push_back(b);
  }
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < size && i < bits.size(); ++i) {
    const std::size_t j = i + rng.uniform(bits.size() - i);
    std::swap(bits[i], bits[j]);
    out |= 1ull << bits[i];
  }
  return out;
}

}  // namespace

double superadditivity_rate(std::size_t n, const CharacteristicFn& value,
                            std::size_t trials, Rng& rng) {
  if (n < 2 || n > 63) throw std::invalid_argument("superadditivity_rate: bad n");
  std::size_t held = 0;
  const std::uint64_t full = (1ull << n) - 1;
  for (std::size_t t = 0; t < trials; ++t) {
    // Stratify by size so small-vs-large splits are exercised too.
    const auto size_k = static_cast<std::size_t>(rng.uniform(n + 1));
    const std::uint64_t k = random_subset_of_size(full, size_k, rng);
    const std::uint64_t rest = full & ~k;
    const auto rest_count = static_cast<std::size_t>(std::popcount(rest));
    const auto size_l = static_cast<std::size_t>(rng.uniform(rest_count + 1));
    const std::uint64_t l = random_subset_of_size(rest, size_l, rng);
    if (value(k | l) >= value(k) + value(l) - 1e-12) ++held;
  }
  return trials == 0 ? 1.0 : static_cast<double>(held) / static_cast<double>(trials);
}

double supermodularity_rate(std::size_t n, const CharacteristicFn& value,
                            std::size_t trials, Rng& rng) {
  if (n < 2 || n > 63) throw std::invalid_argument("supermodularity_rate: bad n");
  std::size_t held = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto j = static_cast<std::size_t>(rng.uniform(n));
    const std::uint64_t jbit = 1ull << j;
    const std::uint64_t others = ((1ull << n) - 1) & ~jbit;
    // Stratified sizes: |L| uniform in [0, n-1], |K| uniform in [0, |L|] —
    // uniform subset draws almost never produce the (tiny K, huge L) pairs
    // where redundancy-driven violations live.
    const auto size_l = static_cast<std::size_t>(rng.uniform(n));
    const std::uint64_t l = random_subset_of_size(others, size_l, rng);
    const auto size_k = static_cast<std::size_t>(rng.uniform(size_l + 1));
    const std::uint64_t k = random_subset_of_size(l, size_k, rng);
    const double delta_k = value(k | jbit) - value(k);
    const double delta_l = value(l | jbit) - value(l);
    if (delta_k <= delta_l + 1e-12) ++held;
  }
  return trials == 0 ? 1.0 : static_cast<double>(held) / static_cast<double>(trials);
}

}  // namespace bsr::econ
