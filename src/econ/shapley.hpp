// Shapley-value revenue distribution inside the broker coalition (§7.2).
//
// φ_j(B) = (1/|B|!) Σ_π Δ_j(B(π, j)) — the permutation-averaged marginal
// contribution (Eq. 13). We provide:
//   * exact computation by subset enumeration (O(2^n · n), n <= 20), using
//     the equivalent weighted-subset formula;
//   * Monte-Carlo permutation sampling for larger coalitions (the paper
//     cites [35], [37] for exactly this approximation);
//   * property probes: efficiency, symmetry, superadditivity (Theorem 7's
//     individual-rationality precondition) and supermodularity (Theorem 8's
//     strong-stability precondition, which fails beyond a size threshold —
//     the paper's stopping signal for coalition growth).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/rng.hpp"

namespace bsr::econ {

/// Characteristic function over player subsets encoded as bitmasks
/// (bit j set = player j in the coalition). Must satisfy U(∅) = 0.
using CharacteristicFn = std::function<double(std::uint64_t mask)>;

/// Exact Shapley values for n players (n <= 20). The characteristic
/// function is evaluated once per subset (2^n calls, memoized internally).
/// Throws std::invalid_argument for n = 0 or n > 20.
[[nodiscard]] std::vector<double> shapley_exact(std::size_t n,
                                                const CharacteristicFn& value);

struct ShapleyEstimate {
  std::vector<double> value;       // estimated φ_j
  std::vector<double> std_error;   // per-player standard error of the mean
  std::size_t permutations = 0;
};

/// Monte-Carlo Shapley via uniformly sampled permutations; n·permutations
/// characteristic evaluations.
[[nodiscard]] ShapleyEstimate shapley_monte_carlo(std::size_t n,
                                                  const CharacteristicFn& value,
                                                  std::size_t permutations,
                                                  bsr::graph::Rng& rng);

/// Checks U(K ∪ L) >= U(K) + U(L) over `trials` random disjoint pairs.
/// Returns the fraction of trials where superadditivity held.
[[nodiscard]] double superadditivity_rate(std::size_t n, const CharacteristicFn& value,
                                          std::size_t trials, bsr::graph::Rng& rng);

/// Checks Δ_j(K) <= Δ_j(L) for random K ⊆ L ⊆ N\{j} over `trials` draws.
/// Returns the fraction of trials where supermodularity held.
[[nodiscard]] double supermodularity_rate(std::size_t n, const CharacteristicFn& value,
                                          std::size_t trials, bsr::graph::Rng& rng);

}  // namespace bsr::econ
