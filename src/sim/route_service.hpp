// Fault-tolerant route-serving plane: a long-lived landmark oracle service.
//
// The Router answers one query at a time with a full early-exit BFS — fine
// inside sim loops, hopeless for a brokerage serving millions of route
// lookups per second. RouteService turns the dominated subgraph G_B into a
// precomputed *oracle* and serves queries out of flat arrays:
//
//   * Exact reachability from a RollbackUnionFind over the usable dominated
//     edges, materialized into a per-vertex component label (two loads and a
//     compare per query).
//   * A landmark/hub sketch: BFS trees (engine::bfs_dir_opt, sharded over
//     landmarks by BSR_THREADS) rooted at the top-degree usable brokers.
//     dist(s, t) is upper-bounded by min_l d(l, s) + d(l, t), and the BFS
//     parent arrays give an O(1) next hop toward the stitch landmark plus
//     full path recovery (stitch_path) without touching the graph.
//
// The oracle is versioned by **epochs**. The driving loop notifies the
// service of ground-truth changes (on_fault / on_heal / on_health_view);
// every notification bumps the truth version, and an epoch is *fresh* iff
// its truth version matches. The robustness story is what happens when they
// diverge:
//
//   * Heal-only deltas are patched incrementally: union-find checkpoint,
//     unite the newly usable edges, re-materialize labels. Additions keep
//     reachability exact and distance bounds admissible, so the epoch is
//     re-stamped fresh without a rebuild. A crashed patch rolls back to the
//     checkpoint and falls through to the rebuild path.
//   * Faults cannot be patched into a union-find, so the service enters
//     explicit degraded mode: it keeps serving the stale epoch, tagging
//     answers kStaleServed, until the staleness bound (max_stale_events)
//     trips and answers become kRefused. Full rebuilds are scheduled by a
//     RebuildScheduler with retry/exponential-backoff/budget semantics
//     mirroring sim/health's RepairScheduler; rebuild attempts can be
//     crashed or invalidated mid-build (a truth change while building
//     discards the result) and restart idempotently — a half-built epoch is
//     never observable.
//   * Overload robustness: an optional token-bucket admission gate sheds
//     excess batch load deterministically (kShedded), with a configurable
//     capacity derate while degraded.
//
// Determinism contract: answers depend only on (epoch contents, query,
// admission prefix), never on thread count — serve_batch() shards the
// evaluation but every per-query decision is computed from shared immutable
// state, so the answer digest is bit-identical at any BSR_THREADS. Journal
// events (sim.route_service.*) are emitted only from the single-threaded
// control paths (construction, notifications, advance()), never from worker
// shards.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "graph/rollback_union_find.hpp"
#include "sim/demand.hpp"
#include "sim/health.hpp"

namespace bsr::sim {

/// Degradation tier of one served answer, best first.
enum class AnswerStatus : std::uint8_t {
  kFresh,        // epoch matches ground truth: reachability is exact
  kStaleServed,  // serving a stale epoch in degraded mode (bounded staleness)
  kShedded,      // admission control dropped the query before evaluation
  kRefused,      // no usable oracle (null epoch or staleness bound exceeded)
};

[[nodiscard]] const char* to_string(AnswerStatus status) noexcept;

/// Sentinel next hop: the oracle has no hop to offer (unreachable, shedded,
/// or the pair's component holds no landmark).
inline constexpr bsr::graph::NodeId kNoNextHop =
    std::numeric_limits<bsr::graph::NodeId>::max();

struct RouteAnswer {
  AnswerStatus status = AnswerStatus::kRefused;
  /// Exact (union-find) reachability in the epoch's snapshot of G_B. For
  /// kFresh answers this matches the ground-truth oracle by construction.
  bool reachable = false;
  /// Landmark triangle upper bound on the dominated distance;
  /// graph::kUnreachable when unreachable or no landmark covers the pair.
  std::uint32_t dist_bound = bsr::graph::kUnreachable;
  /// First hop from src along a usable dominated path (kNoNextHop if none).
  bsr::graph::NodeId next_hop = kNoNextHop;
  /// Epoch that served the answer (0 = no epoch built yet; the constructor
  /// always publishes epoch 1, so served answers carry ids >= 1).
  std::uint64_t epoch = 0;
  /// Deterministic virtual cost of the oracle lookup / path stitch stages:
  /// functions of the epoch contents and the query alone (component-label
  /// loads, landmark rows scanned, parent-chain steps), never of wall time,
  /// so they are bit-identical across hosts and thread counts. Computed
  /// unconditionally (answer layout never depends on the stats gate); the
  /// per-query tracer and latency sketches consume them. Zero for queries
  /// that were shedded or refused before evaluation.
  std::uint16_t lookup_ticks = 0;
  std::uint16_t stitch_ticks = 0;
};

/// FNV-1a digest over the answer stream — the integer the CI `serve` job
/// `cmp`s across BSR_THREADS values.
[[nodiscard]] std::uint64_t answer_digest(std::span<const RouteAnswer> answers);

// --- rebuild scheduling -----------------------------------------------------

struct RebuildPolicy {
  /// Simulated duration of one full oracle rebuild.
  double build_time = 2.0;
  /// A requested rebuild starts this long after the triggering event; each
  /// failed attempt multiplies the restart delay by retry_factor up to
  /// retry_max (same shape as RepairPolicy).
  double retry_backoff = 0.5;
  double retry_factor = 2.0;
  double retry_max = 16.0;
  /// Consecutive failed attempts before the scheduler goes idle until the
  /// next truth event re-arms it.
  std::uint32_t max_retries = 8;
  /// Lifetime rebuild budget: attempts beyond this never start and the
  /// service stays degraded (the knob the monotonicity harness sweeps).
  std::uint32_t max_rebuilds = std::numeric_limits<std::uint32_t>::max();
};

/// Turns truth-change signals into scheduled rebuild attempts. Owns only
/// timing/budget state — RouteService performs the actual build and reports
/// success or failure back. Mirrors sim/health's RepairScheduler.
class RebuildScheduler {
 public:
  explicit RebuildScheduler(const RebuildPolicy& policy) : policy_(policy) {}

  /// Arms a rebuild at `now` + retry_backoff if idle (and budget remains).
  void request(double now);

  /// Time of the next due build start (infinity if idle).
  [[nodiscard]] double next_due() const noexcept { return due_; }

  /// Consumes the due attempt: true iff a build may start (budget left).
  /// Exhausting the budget parks the scheduler permanently.
  [[nodiscard]] bool begin(double now);

  /// Disarms a pending attempt (the epoch became fresh by other means).
  void cancel() noexcept;

  /// Reports the outcome of a started build. Failure schedules a backed-off
  /// restart until max_retries is exhausted.
  void report(double now, bool success);

  [[nodiscard]] bool exhausted() const noexcept {
    return starts_ >= policy_.max_rebuilds;
  }
  [[nodiscard]] std::uint64_t starts() const noexcept { return starts_; }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

 private:
  RebuildPolicy policy_;
  double due_ = std::numeric_limits<double>::infinity();
  std::uint32_t retries_ = 0;
  std::uint64_t starts_ = 0;
  std::uint64_t failures_ = 0;
};

// --- the service -------------------------------------------------------------

struct RouteServiceConfig {
  /// Landmark count (clamped to the number of usable brokers).
  std::uint32_t num_landmarks = 16;
  /// Truth events an epoch may lag before stale answers become kRefused.
  std::uint64_t max_stale_events = 64;
  RebuildPolicy rebuild;
  /// Admission token bucket: volume units admitted per simulated time unit;
  /// 0 disables shedding entirely.
  double admit_rate = 0.0;
  /// Bucket depth (burst); defaults to admit_rate when 0.
  double admit_burst = 0.0;
  /// Capacity multiplier applied while serving a stale epoch, in [0, 1] —
  /// a degraded service can deliberately shed harder.
  double degraded_admit_factor = 1.0;
};

/// Deterministic failure injection for the maintainer (tests/benches).
struct RebuildInjection {
  /// Crash the next N rebuild attempts (decremented as builds start).
  std::uint32_t crash_next_rebuilds = 0;
  /// Crash the next N incremental patches (rolled back via checkpoint).
  std::uint32_t crash_next_patches = 0;
  /// Additional per-attempt crash coin, drawn from a seeded Rng in event
  /// order — 0 disables.
  double crash_prob = 0.0;
  std::uint64_t seed = 0x5eedf00dULL;
};

struct RouteServiceStats {
  std::uint64_t queries = 0;
  std::uint64_t fresh = 0;
  std::uint64_t stale_served = 0;
  std::uint64_t shedded = 0;
  std::uint64_t refused = 0;
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuild_crashes = 0;
  std::uint64_t rebuilds_discarded = 0;  // invalidated by a mid-build truth change
  std::uint64_t patches = 0;
  std::uint64_t patch_crashes = 0;
  std::uint64_t epochs_published = 0;
  /// Highest staleness (truth events behind) any stale answer was served at
  /// over the service lifetime (the obs gauge, by contrast, resets at each
  /// epoch publish and describes the current epoch only).
  std::uint64_t max_stale_served = 0;
  /// Tick-cost summary of the most recent non-empty batch (admit + lookup +
  /// stitch per query; p99/max as QuantileSketch bucket lower bounds). Only
  /// maintained when BSR_STATS is compiled in; zero otherwise.
  std::uint64_t last_batch_p99_ticks = 0;
  std::uint64_t last_batch_max_ticks = 0;
};

/// Epoch-lifecycle transition, for invariant checking (the in-memory twin of
/// the sim.route_service.* journal events).
enum class EpochEventKind : std::uint8_t {
  kPublish,        // a freshly built epoch went live
  kPatch,          // heal-only delta folded in; epoch re-stamped fresh
  kDegrade,        // truth diverged; serving stale from here
  kRebuildStart,   // a rebuild attempt began
  kRebuildCrash,   // injected crash; attempt lost, restart scheduled
  kRebuildDiscard, // built against a stale truth version; thrown away
  kRebuildGiveUp,  // retries or budget exhausted; parked degraded
};

struct EpochTransition {
  double time = 0.0;
  EpochEventKind kind = EpochEventKind::kPublish;
  std::uint64_t epoch = 0;          // serving (or newly published) epoch id
  std::uint64_t truth_version = 0;  // truth version at the transition
  std::uint64_t attempt = 0;        // rebuild-attempt id (0 = none)
};

/// Comparison of one served answer against a ground-truth route, mirroring
/// route_with_health's belief-vs-truth verdicts.
enum class AuditOutcome : std::uint8_t {
  kAgree,        // answer and truth agree on reachability
  kMisrouted,    // service claims reachable, truth says no — blackholed
  kShunned,      // service refuses/denies a pair truth still connects
  kUnreachable,  // both sides agree the pair is lost
};

[[nodiscard]] AuditOutcome audit_answer(const RouteAnswer& answer,
                                        bool truth_reachable) noexcept;

/// Long-lived route oracle with epoch versioning, degraded-mode serving and
/// budgeted rebuilds. Single-threaded control surface; serve_batch shards
/// only the read-side evaluation.
class RouteService {
 public:
  /// Builds the initial epoch synchronously at time 0 from the current
  /// fault-plane state. `g`, `brokers` and `faults` are held by reference
  /// and must outlive the service; `faults` may be nullptr (pristine truth).
  /// An empty broker set (or one with every member failed) yields a
  /// well-defined null service that answers kRefused. Throws
  /// std::invalid_argument when `brokers` was built for a different vertex
  /// count than `g`.
  RouteService(const bsr::graph::CsrGraph& g, const bsr::broker::BrokerSet& brokers,
               const bsr::graph::FaultPlane* faults,
               const RouteServiceConfig& config = {},
               const RebuildInjection& injection = {});

  // --- truth notifications (single-threaded control path) -------------------

  /// A failure landed in the fault plane: degrade and schedule a rebuild.
  void on_fault(double now);

  /// A heal landed: patch the epoch incrementally if it was fresh (heal-only
  /// deltas keep the oracle exact); otherwise just bump the truth version —
  /// the pending rebuild will absorb it.
  void on_heal(double now);

  /// The health detector published a new belief: serve only brokers the view
  /// considers routable. Counts as a truth change (degrade + rebuild).
  void on_health_view(const HealthView& view, double now);

  // --- event loop -----------------------------------------------------------

  /// Time of the next internal event (build completion or due build start);
  /// infinity when idle.
  [[nodiscard]] double next_event_time() const noexcept;

  /// Processes every internal event with time <= now in deterministic order.
  /// Returns the number of events processed.
  std::size_t advance(double now);

  // --- serving --------------------------------------------------------------

  /// Answers one query at `now` (volume 1 against the admission bucket).
  [[nodiscard]] RouteAnswer query(bsr::graph::NodeId src, bsr::graph::NodeId dst,
                                  double now);

  /// Answers a batch: admission decided sequentially per flow volume, then
  /// the evaluation sharded by BSR_THREADS. `out` is resized to match.
  void serve_batch(std::span<const Flow> queries, double now,
                   std::vector<RouteAnswer>& out);

  /// Full stitched path src..dst through the best landmark of the serving
  /// epoch; empty when unreachable or no landmark covers the pair. The walk
  /// uses only usable dominated edges of the epoch's snapshot.
  [[nodiscard]] std::vector<bsr::graph::NodeId> stitch_path(
      bsr::graph::NodeId src, bsr::graph::NodeId dst) const;

  // --- introspection --------------------------------------------------------

  [[nodiscard]] std::uint64_t epoch_id() const noexcept { return epoch_id_; }
  [[nodiscard]] std::uint64_t truth_version() const noexcept {
    return truth_version_;
  }
  /// Truth events the serving epoch lags behind (0 = fresh).
  [[nodiscard]] std::uint64_t stale_events() const noexcept {
    return truth_version_ - epoch_truth_version_;
  }
  [[nodiscard]] bool degraded() const noexcept { return stale_events() != 0; }
  /// True iff the serving epoch has no usable broker (answers are kRefused).
  [[nodiscard]] bool null_epoch() const noexcept { return null_epoch_; }
  [[nodiscard]] bool rebuild_pending() const noexcept { return build_active_; }

  [[nodiscard]] const RouteServiceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RebuildScheduler& scheduler() const noexcept {
    return scheduler_;
  }
  [[nodiscard]] std::span<const EpochTransition> transitions() const noexcept {
    return transitions_;
  }
  [[nodiscard]] std::span<const bsr::graph::NodeId> landmarks() const noexcept {
    return landmarks_;
  }
  [[nodiscard]] std::size_t usable_broker_count() const noexcept {
    return usable_broker_count_;
  }

 private:
  /// Sentinel in the uint16 landmark distance plane.
  static constexpr std::uint16_t kLmUnreachable =
      std::numeric_limits<std::uint16_t>::max();

  void build_epoch(double now, std::uint64_t attempt);
  void try_patch(double now);
  void start_due_build(double now);
  void complete_build(double now);
  [[nodiscard]] bool draw_crash(std::uint32_t& deterministic_queue);
  void record(double now, EpochEventKind kind, std::uint64_t attempt);
  /// Read-side evaluation against the serving epoch; thread-safe const.
  void eval(bsr::graph::NodeId src, bsr::graph::NodeId dst,
            RouteAnswer& answer) const;
  [[nodiscard]] AnswerStatus serving_status() const noexcept;
  void tally(std::span<const RouteAnswer> answers, double now);

  const bsr::graph::CsrGraph* graph_;
  const bsr::broker::BrokerSet* brokers_;
  const bsr::graph::FaultPlane* faults_;
  RouteServiceConfig config_;
  RebuildInjection injection_;
  bsr::graph::Rng crash_rng_;

  // Belief mask from the last health view (empty = trust every member).
  std::vector<bool> believed_routable_;
  bool has_belief_ = false;

  // --- serving epoch (immutable between control-path mutations) ------------
  std::uint64_t epoch_id_ = 0;
  std::uint64_t epoch_truth_version_ = 0;
  bool null_epoch_ = true;
  bsr::graph::RollbackUnionFind uf_;
  std::vector<bsr::graph::NodeId> comp_;     // materialized uf_ root per vertex
  std::vector<bool> usable_mask_;            // broker && believed && vertex up
  std::vector<std::uint8_t> vertex_up_;      // fault-plane vertex state at build
  std::vector<bsr::graph::NodeId> landmarks_;
  std::vector<std::uint16_t> lm_dist_;       // [l * n + v], kLmUnreachable = none
  std::vector<bsr::graph::NodeId> lm_parent_;  // [l * n + v], toward landmark l
  std::size_t usable_broker_count_ = 0;

  // --- maintainer state ------------------------------------------------------
  std::uint64_t truth_version_ = 0;
  RebuildScheduler scheduler_;
  bool build_active_ = false;
  double build_completes_at_ = 0.0;
  std::uint64_t build_base_truth_ = 0;
  bool build_will_crash_ = false;
  std::uint64_t build_attempt_ = 0;  // id of the in-flight attempt
  std::uint64_t next_attempt_ = 1;   // attempt-id allocator (0 = initial build)

  // --- admission bucket ------------------------------------------------------
  double tokens_ = 0.0;
  double bucket_at_ = 0.0;

  RouteServiceStats stats_;
  std::vector<EpochTransition> transitions_;
};

}  // namespace bsr::sim
