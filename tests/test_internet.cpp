#include "topology/internet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/components.hpp"
#include "graph/degree_stats.hpp"
#include "topology/stats.hpp"

namespace bsr::topology {
namespace {

using bsr::graph::NodeId;

/// Small but non-trivial test-scale topology (~2,600 vertices).
InternetConfig small_config() {
  InternetConfig base;
  auto cfg = base.scaled(0.05);
  cfg.seed = 99;
  return cfg;
}

class InternetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { topo_ = new InternetTopology(make_internet(small_config())); }
  static void TearDownTestSuite() {
    delete topo_;
    topo_ = nullptr;
  }
  static InternetTopology* topo_;
};

InternetTopology* InternetTest::topo_ = nullptr;

TEST_F(InternetTest, VertexCountsMatchConfig) {
  const auto cfg = small_config();
  EXPECT_EQ(topo_->num_ases, cfg.num_ases);
  EXPECT_EQ(topo_->num_ixps, cfg.num_ixps);
  EXPECT_EQ(topo_->num_vertices(), cfg.num_ases + cfg.num_ixps);
  EXPECT_EQ(topo_->meta.size(), topo_->num_vertices());
}

TEST_F(InternetTest, EdgeBudgetRespected) {
  const auto cfg = small_config();
  std::uint64_t as_as = 0;
  for (NodeId u = 0; u < topo_->num_ases; ++u) {
    for (const NodeId v : topo_->graph.neighbors(u)) {
      if (u < v && v < topo_->num_ases) ++as_as;
    }
  }
  EXPECT_NEAR(static_cast<double>(as_as), static_cast<double>(cfg.target_as_edges),
              cfg.target_as_edges * 0.02);
}

TEST_F(InternetTest, IxpAttachmentRateMatches) {
  EXPECT_NEAR(topo_->ixp_attachment_rate(), small_config().ixp_participation, 0.01);
}

TEST_F(InternetTest, IxpsAreTypedAndTierless) {
  for (NodeId v = topo_->num_ases; v < topo_->num_vertices(); ++v) {
    EXPECT_TRUE(topo_->is_ixp(v));
    EXPECT_EQ(topo_->meta[v].type, NodeType::kIxp);
    EXPECT_EQ(topo_->meta[v].tier, Tier::kTierNone);
  }
}

TEST_F(InternetTest, TierOneFormsCliqueOfPeers) {
  std::vector<NodeId> tier1;
  for (NodeId v = 0; v < topo_->num_ases; ++v) {
    if (topo_->meta[v].tier == Tier::kTier1) tier1.push_back(v);
  }
  ASSERT_GE(tier1.size(), 4u);
  for (const NodeId u : tier1) {
    for (const NodeId v : tier1) {
      if (u >= v) continue;
      ASSERT_TRUE(topo_->graph.has_edge(u, v));
      EXPECT_TRUE(topo_->relations.is_peer(u, v));
    }
  }
}

TEST_F(InternetTest, GiantComponentMatchesIsolatedFraction) {
  const auto cfg = small_config();
  const auto comps = bsr::graph::connected_components(topo_->graph);
  const auto expected_isolated =
      static_cast<std::uint32_t>(std::llround(cfg.num_ases * cfg.isolated_fraction));
  EXPECT_NEAR(static_cast<double>(comps.largest_size()),
              static_cast<double>(topo_->num_vertices() - expected_isolated),
              3.0);
}

TEST_F(InternetTest, TransitEdgesPointDownTheHierarchy) {
  // For provider-customer edges between different tiers, the provider must
  // be the same tier or higher (numerically lower) than the customer.
  std::size_t checked = 0;
  for (const auto& e : topo_->graph.edges()) {
    if (e.v >= topo_->num_ases) continue;  // skip IXP memberships
    const EdgeRel rel = topo_->relations.rel_canonical(e.u, e.v);
    if (rel == EdgeRel::kPeer) continue;
    const NodeId provider = rel == EdgeRel::kUProviderOfV ? e.u : e.v;
    const NodeId customer = rel == EdgeRel::kUProviderOfV ? e.v : e.u;
    EXPECT_LE(static_cast<int>(topo_->meta[provider].tier),
              static_cast<int>(topo_->meta[customer].tier));
    ++checked;
  }
  EXPECT_GT(checked, 1000u);
}

TEST_F(InternetTest, IxpEdgesArePeering) {
  for (NodeId ixp = topo_->num_ases; ixp < topo_->num_vertices(); ++ixp) {
    for (const NodeId m : topo_->graph.neighbors(ixp)) {
      EXPECT_TRUE(topo_->relations.is_peer(ixp, m));
      EXPECT_LT(m, topo_->num_ases);  // IXPs never interconnect directly
    }
  }
}

TEST_F(InternetTest, AsOnlyGraphDropsExactlyIxpEdges) {
  const auto as_graph = topo_->as_only_graph();
  EXPECT_EQ(as_graph.num_vertices(), topo_->num_ases);
  std::uint64_t membership_edges = 0;
  for (NodeId ixp = topo_->num_ases; ixp < topo_->num_vertices(); ++ixp) {
    membership_edges += topo_->graph.degree(ixp);
  }
  EXPECT_EQ(as_graph.num_edges(), topo_->graph.num_edges() - membership_edges);
}

TEST_F(InternetTest, HeavyTailedDegrees) {
  const auto stats = bsr::graph::compute_degree_stats(topo_->graph);
  EXPECT_GT(stats.max, stats.mean * 20);
}

TEST(Internet, DeterministicInSeed) {
  auto cfg = InternetConfig{}.scaled(0.02);
  cfg.seed = 5;
  const auto a = make_internet(cfg);
  const auto b = make_internet(cfg);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  cfg.seed = 6;
  const auto c = make_internet(cfg);
  EXPECT_NE(a.graph.edges(), c.graph.edges());
}

TEST(Internet, ValidationCatchesBadConfigs) {
  InternetConfig cfg;
  cfg.num_ases = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = InternetConfig{};
  cfg.ixp_participation = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = InternetConfig{};
  cfg.tier1_fraction = 0.9;
  cfg.tier2_fraction = 0.2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = InternetConfig{};
  cfg.isolated_fraction = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = InternetConfig{};
  EXPECT_THROW(cfg.scaled(0.0), std::invalid_argument);
}

TEST(Internet, SummaryStatisticsConsistent) {
  auto cfg = InternetConfig{}.scaled(0.03);
  cfg.seed = 17;
  const auto topo = make_internet(cfg);
  const auto summary = summarize(topo, 64, 1, 4, cfg.ixp_peering_prob);
  EXPECT_EQ(summary.num_ases, topo.num_ases);
  EXPECT_EQ(summary.num_ixps, topo.num_ixps);
  EXPECT_GT(summary.alpha_within_beta, 0.8);  // small-world even when scaled
  EXPECT_LE(summary.as_as_via_ixp_pairs, summary.colocated_pairs);
  std::uint64_t memberships = 0;
  for (NodeId ixp = topo.num_ases; ixp < topo.num_vertices(); ++ixp) {
    memberships += topo.graph.degree(ixp);
  }
  EXPECT_EQ(summary.ixp_memberships, memberships);
}

}  // namespace
}  // namespace bsr::topology
