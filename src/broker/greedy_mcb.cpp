#include "broker/greedy_mcb.hpp"

#include <queue>
#include <stdexcept>
#include <vector>

#include "broker/coverage.hpp"
#include "graph/engine.hpp"
#include "graph/renumbering.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Renumbering;

GreedyMcbResult greedy_mcb(const CsrGraph& g, std::uint32_t k,
                           const Renumbering* ren) {
  BSR_SPAN("broker.greedy_mcb");
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("greedy_mcb: empty graph");
  if (ren != nullptr && ren->size() != n) {
    throw std::invalid_argument("greedy_mcb: renumbering size mismatch");
  }

  GreedyMcbResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  CoverageTracker tracker(g);
  // Heap entries and all ids below live in the ORIGINAL label space; only
  // tracker calls translate through the renumbering. With ren == nullptr
  // to_graph is the identity.
  const auto to_graph = [&](NodeId v) { return ren ? ren->to_new(v) : v; };

  // Lazy greedy: heap entries carry the iteration at which the gain was
  // computed; submodularity guarantees gains only shrink, so a stale top
  // entry is an upper bound and can be refreshed in place.
  struct Entry {
    std::uint32_t gain;
    NodeId vertex;
    std::uint32_t stamp;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // deterministic tie-break: lowest id wins
    }
  };
  std::priority_queue<Entry> heap;
  BSR_STATS_ONLY(std::uint64_t evals = 0;)
  // The initial full gain pass is the only O(|E|) step — shard it.
  // marginal_gain is const (pure reads of the covered bitmap), the gains are
  // integers in disjoint slots, and the heap is built by a serial
  // ascending-id push afterwards, so the heap state is independent of the
  // shard count.
  {
    std::vector<std::uint32_t> init_gain(n);
    bsr::graph::engine::for_each_shard(
        n, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t v = begin; v < end; ++v) {
            init_gain[v] =
                tracker.marginal_gain(to_graph(static_cast<NodeId>(v)));
          }
        });
    BSR_STATS_ONLY(evals += n;)
    for (NodeId v = 0; v < n; ++v) heap.push(Entry{init_gain[v], v, 0});
  }

  std::uint32_t round = 0;
  while (result.brokers.size() < k && !heap.empty() && !tracker.all_covered()) {
    Entry top = heap.top();
    heap.pop();
    if (tracker.is_broker(to_graph(top.vertex))) continue;
    if (top.stamp != round) {
      BSR_STATS_ONLY(++evals;)
      top.gain = tracker.marginal_gain(to_graph(top.vertex));
      top.stamp = round;
      if (top.gain == 0) continue;  // nothing new to cover from this vertex
      heap.push(top);
      continue;
    }
    tracker.add(to_graph(top.vertex));
    result.brokers.add(top.vertex);
    result.coverage_curve.push_back(tracker.covered_count());
    BSR_COUNT(GreedyRounds);
    ++round;
  }
  BSR_COUNT_N(GreedyGainEvals, evals);
  result.coverage = tracker.covered_count();
  return result;
}

}  // namespace bsr::broker
