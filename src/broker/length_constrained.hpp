// Problem 4 — MCBG with path-length constraints (§5.2), as a repair loop.
//
// The paper evaluates a candidate set by |F_B(l) − F(l)| ≤ ε (Eq. 4) but
// gives no algorithm to *achieve* ε-feasibility. This module closes that
// loop: while the deviation exceeds ε, find pairs whose free shortest path
// fits within l hops but whose dominating path does not, and promote
// alternate interior vertices of the free path to brokers — each promotion
// makes that exact path dominating, directly moving mass from F to F_B at
// its length. Iterate until feasible or the broker budget is exhausted.
#pragma once

#include <cstdint>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::broker {

struct LengthRepairOptions {
  double epsilon = 0.02;        // Eq. (4) tolerance
  std::uint32_t max_added = 64; // broker budget for the repair
  std::size_t sources = 96;     // BFS sources per evaluation round
  std::size_t pairs_per_round = 32;  // inflated pairs repaired per round
  std::uint32_t max_rounds = 16;
};

struct LengthRepairResult {
  BrokerSet brokers;            // input set plus promotions
  double initial_deviation = 0.0;
  double final_deviation = 0.0;
  std::uint32_t added = 0;
  std::uint32_t rounds = 0;
  bool feasible = false;        // final_deviation <= epsilon
};

/// Repairs `b` toward ε-feasibility of the path-length distribution.
/// Deterministic in rng. Throws std::invalid_argument on bad options.
[[nodiscard]] LengthRepairResult repair_path_lengths(
    const bsr::graph::CsrGraph& g, const BrokerSet& b, bsr::graph::Rng& rng,
    const LengthRepairOptions& options = {});

}  // namespace bsr::broker
