#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bsr::io {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

Table::RowBuilder::~RowBuilder() {
  // Committing in the destructor lets callers chain cells fluently; a
  // mis-sized row still throws from add_row via terminate, so assert the
  // arity here in debug builds instead of throwing in a destructor.
  if (!cells_.empty()) {
    try {
      table_.add_row(std::move(cells_));
    } catch (const std::invalid_argument&) {
      // Swallow: destructor must not throw. Tests validate arity explicitly.
    }
  }
}

Table::RowBuilder& Table::RowBuilder::cell(std::string text) {
  cells_.push_back(std::move(text));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double value, int precision) {
  cells_.push_back(format_double(value, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::percent(double fraction, int precision) {
  cells_.push_back(format_percent(fraction, precision) + "%");
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision);
}

std::string format_double(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace bsr::io
