// The dominated subgraph G_B and its connectivity metrics.
//
// A path is B-dominating iff every hop has at least one endpoint in B —
// equivalently, iff it is a path of the subgraph G_B = (V, E_B) where
// E_B = { (u,v) ∈ E : u ∈ B or v ∈ B }. All of the paper's evaluation
// metrics reduce to reachability/distances in G_B:
//   * saturated E2E connectivity — fraction of vertex pairs connected in G_B
//     (exact, via union-find over active edges);
//   * l-hop E2E connectivity — fraction of pairs within l hops in G_B
//     (sampled BFS, see graph/distance_histogram.hpp);
//   * broker-only connectivity (Fig. 5a) — pairs connected using no
//     non-broker intermediate node.
//
// DominatedEvaluator is the engine-era entry point: it builds the union-find
// over G_B once and serves every metric from it (the free functions below
// are one-shot shims). Its RollbackUnionFind supports checkpoint/rollback,
// so callers can probe "what if broker w joined?" without rebuilding.
#pragma once

#include <cstdint>
#include <functional>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/distance_histogram.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"
#include "graph/rollback_union_find.hpp"

namespace bsr::broker {

/// Edge filter selecting exactly the dominated edges of B. Bind-by-reference:
/// the BrokerSet must outlive the returned filter.
[[nodiscard]] bsr::graph::EdgeFilter dominated_edge_filter(const BrokerSet& b);

/// Unions the endpoints of every active edge of G_B into `uf` by iterating
/// each broker's star — O(|V| + sum of broker degrees), touching each active
/// edge at least once. With a fault plane, only usable edges (both endpoints
/// up, link up) count. Works with both UnionFind and RollbackUnionFind.
template <class UF>
void build_dominated_uf(const bsr::graph::CsrGraph& g, const BrokerSet& b, UF& uf,
                        const bsr::graph::FaultPlane* faults = nullptr) {
  namespace engine = bsr::graph::engine;
  if (faults == nullptr) {
    for (const bsr::graph::NodeId u : b.members()) {
      engine::unite_star(g, uf, u, engine::AllEdges{});
    }
  } else {
    const engine::FaultAwareFilter admit{faults};
    for (const bsr::graph::NodeId u : b.members()) {
      if (!faults->vertex_ok(u)) continue;
      engine::unite_star(g, uf, u, admit);
    }
  }
}

/// Persistent evaluator over G_B: one union-find build serves connectivity,
/// largest-component, and component queries (the legacy free functions each
/// rebuilt it from scratch). The graph/broker set (and fault plane, if any)
/// are held by reference and re-read on rebuild(), so a caller mutating them
/// between events just calls rebuild() — the arrays are reused, not
/// reallocated. uf() exposes checkpoint/rollback for speculative probing.
class DominatedEvaluator {
 public:
  DominatedEvaluator(const bsr::graph::CsrGraph& g, const BrokerSet& b,
                     const bsr::graph::FaultPlane* faults = nullptr);

  /// Re-derives the union-find from the current broker/fault state.
  void rebuild();

  /// Exact saturated E2E connectivity (fraction of all |V| choose 2 pairs
  /// connected in G_B). O(1) — served from the incremental pair count.
  [[nodiscard]] double connectivity() const noexcept;

  /// Size of the largest dominated component. O(|V|).
  [[nodiscard]] std::uint32_t largest_component() const noexcept {
    return uf_.largest_component_size();
  }

  [[nodiscard]] bsr::graph::RollbackUnionFind& uf() noexcept { return uf_; }
  [[nodiscard]] const bsr::graph::RollbackUnionFind& uf() const noexcept {
    return uf_;
  }

  [[nodiscard]] const bsr::graph::CsrGraph& graph() const noexcept { return *graph_; }

 private:
  const bsr::graph::CsrGraph* graph_;
  const BrokerSet* brokers_;
  const bsr::graph::FaultPlane* faults_;
  bsr::graph::RollbackUnionFind uf_;
};

/// Exact saturated E2E connectivity: fraction of unordered vertex pairs
/// (over all |V| choose 2 pairs) connected in G_B. O(|V| + |E|).
[[nodiscard]] double saturated_connectivity(const bsr::graph::CsrGraph& g,
                                            const BrokerSet& b);

/// Saturated connectivity of the *damaged* dominated subgraph: only edges
/// the fault plane reports usable (both endpoints up, link up) count. The
/// plane must be bound to `g`. O(|V| + sum of broker degrees).
[[nodiscard]] double saturated_connectivity(const bsr::graph::CsrGraph& g,
                                            const BrokerSet& b,
                                            const bsr::graph::FaultPlane& faults);

/// l-hop connectivity curve in G_B from sampled BFS sources.
[[nodiscard]] bsr::graph::DistanceCdf dominated_distance_cdf(
    const bsr::graph::CsrGraph& g, const BrokerSet& b, bsr::graph::Rng& rng,
    std::size_t num_sources);

/// Statistics for Fig. 5a: among reachable-in-G_B sampled pairs, the share
/// whose shortest dominating path uses only broker intermediate nodes.
struct BrokerOnlyShare {
  double broker_only = 0.0;   // fraction of connected pairs served by B alone
  std::size_t pairs_connected = 0;
  std::size_t pairs_sampled = 0;
};

[[nodiscard]] BrokerOnlyShare broker_only_share(const bsr::graph::CsrGraph& g,
                                                const BrokerSet& b,
                                                bsr::graph::Rng& rng,
                                                std::size_t num_pairs);

/// Size of the largest connected component of G_B. Used by MaxSG's stopping
/// analysis and the "3,540-alliance dominates the maximum connected
/// subgraph" claim.
[[nodiscard]] std::uint32_t largest_dominated_component(const bsr::graph::CsrGraph& g,
                                                        const BrokerSet& b);

}  // namespace bsr::broker
