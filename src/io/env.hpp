// Experiment-scale configuration via environment variables.
//
// The evaluation host may be too slow to run every bench at the paper's
// full 52,079-vertex scale; REPRO_SCALE linearly scales vertex counts and
// REPRO_SOURCES controls BFS-source sampling. Every bench prints the
// effective configuration so results are self-describing.
#pragma once

#include <cstdint>
#include <string>

namespace bsr::io {

struct ExperimentEnv {
  double scale = 1.0;            // REPRO_SCALE: multiplies vertex counts
  std::size_t bfs_sources = 512; // REPRO_SOURCES: sampled BFS sources
  std::uint64_t seed = 20170614; // REPRO_SEED: master seed (ICDCS'17 era)

  /// Scales a full-size count, keeping at least `minimum`.
  [[nodiscard]] std::uint32_t scaled(std::uint32_t full,
                                     std::uint32_t minimum = 1) const;
};

/// Reads REPRO_SCALE / REPRO_SOURCES / REPRO_SEED (all optional).
/// Out-of-range values throw std::runtime_error naming the variable.
[[nodiscard]] ExperimentEnv experiment_env();

/// One-line human-readable description for bench headers.
[[nodiscard]] std::string describe(const ExperimentEnv& env);

}  // namespace bsr::io
