#include "sim/admission.hpp"

#include <stdexcept>

namespace bsr::sim {

using bsr::graph::NodeId;

AdmissionController::AdmissionController(const bsr::graph::CsrGraph& g,
                                         const bsr::broker::BrokerSet& brokers,
                                         AdmissionConfig config)
    : graph_(&g),
      brokers_(&brokers),
      config_(config),
      router_(g, brokers),
      load_(g.num_vertices(), 0.0) {
  if (config_.qos_requirement < 0.0 || config_.qos_requirement > 1.0) {
    throw std::invalid_argument("AdmissionController: requirement outside [0, 1]");
  }
  if (config_.broker_capacity < 0.0) {
    throw std::invalid_argument("AdmissionController: negative capacity");
  }
}

bool AdmissionController::has_capacity(std::span<const NodeId> path,
                                       double volume) const {
  if (config_.broker_capacity <= 0.0) return true;
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (brokers_->contains(path[i]) &&
        load_[path[i]] + volume > config_.broker_capacity) {
      return false;
    }
  }
  return true;
}

void AdmissionController::consume(std::span<const NodeId> path, double volume) {
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (brokers_->contains(path[i])) load_[path[i]] += volume;
  }
}

AdmissionOutcome AdmissionController::admit(const Flow& flow) {
  const Route brokered = router_.route_dominated(flow.src, flow.dst);
  if (brokered.reachable()) {
    const double success =
        path_qos_success(config_.qos, *brokers_, brokered.path);
    if (success >= config_.qos_requirement &&
        has_capacity(brokered.path, flow.volume)) {
      consume(brokered.path, flow.volume);
      ++stats_.brokered;
      stats_.admitted_volume += flow.volume;
      return AdmissionOutcome::kBrokered;
    }
  }

  const Route direct = router_.route_free(flow.src, flow.dst);
  if (!direct.reachable()) {
    ++stats_.unreachable;
    return AdmissionOutcome::kUnreachable;
  }
  const double success = path_qos_success(config_.qos, *brokers_, direct.path);
  if (success >= config_.qos_requirement) {
    ++stats_.bgp_fallback;
    stats_.admitted_volume += flow.volume;
    return AdmissionOutcome::kBgpFallback;
  }
  ++stats_.blocked;
  stats_.blocked_volume += flow.volume;
  return AdmissionOutcome::kBlocked;
}

}  // namespace bsr::sim
