// Reproduces Fig. 6 — the business model's payment flow, executed.
//
// The paper's figure shows: customer ASes pay the coalition at both ends of
// a connection; when no broker-only path exists, the coalition hires a
// non-broker AS and pays it the bargained price; brokers keep the residual.
// We run that ledger over a gravity workload at three broker-set sizes and
// also repair the 1,000-broker set to path-length ε-feasibility (Problem 4)
// to show what the repair costs and buys.
#include <iostream>

#include "bench_common.hpp"
#include "broker/length_constrained.hpp"
#include "broker/maxsg.hpp"
#include "econ/bargaining.hpp"
#include "econ/ledger.hpp"
#include "sim/demand.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Fig. 6: the business model, executed");
  const auto& g = ctx.topo.graph;

  // Employee price from the Nash bargaining stage (§7.1).
  bsr::econ::BargainingConfig bargaining;
  bargaining.broker_price = 1.0;
  bargaining.transit_cost = 0.05;
  const auto hire = bsr::econ::solve_bargaining(bargaining);

  bsr::econ::LedgerConfig ledger_config;
  ledger_config.customer_price = bargaining.broker_price;
  ledger_config.employee_price = hire.feasible ? hire.price : 0.5;
  ledger_config.transit_cost = bargaining.transit_cost;
  std::cout << "prices: p_B = " << ledger_config.customer_price
            << ", bargained p_j = " << ledger_config.employee_price << ", c = "
            << ledger_config.transit_cost << "\n";

  bsr::graph::Rng rng(ctx.env.seed + 19);
  bsr::sim::DemandConfig demand;
  demand.num_flows = 1500;
  const auto flows = bsr::sim::generate_flows(g, demand, rng);

  const auto full = bsr::broker::maxsg(g, ctx.env.scaled(3540, 8)).brokers;

  bsr::io::Table table({"|B|", "flows routed", "employee hops", "revenue in",
                        "employee payout", "coalition profit", "balanced"});
  for (const std::uint32_t paper_k : {100u, 1000u, 3540u}) {
    const auto prefix = full.prefix(std::min<std::size_t>(
        ctx.env.scaled(paper_k, 4), full.size()));
    const auto ledger = bsr::econ::settle_flows(g, prefix, flows, ledger_config);
    table.row()
        .cell(static_cast<std::uint64_t>(prefix.size()))
        .cell(static_cast<std::uint64_t>(ledger.flows_routed))
        .cell(static_cast<std::uint64_t>(ledger.employee_hops))
        .cell(ledger.customer_payments, 0)
        .cell(ledger.employee_payouts, 1)
        .cell(ledger.coalition_profit, 0)
        .cell(ledger.balanced() ? "yes" : "NO");
  }
  table.print(std::cout);

  // Problem 4 add-on: repair the 1,000-broker set to ε-feasible path
  // lengths and report the cost.
  const auto k1000 = full.prefix(std::min<std::size_t>(
      ctx.env.scaled(1000, 4), full.size()));
  bsr::graph::Rng repair_rng(ctx.env.seed + 20);
  bsr::broker::LengthRepairOptions repair_options;
  repair_options.epsilon = 0.09;
  repair_options.max_added = 600;
  repair_options.max_rounds = 24;
  repair_options.pairs_per_round = 48;
  repair_options.sources = std::min<std::size_t>(ctx.env.bfs_sources, 96);
  const auto repair =
      bsr::broker::repair_path_lengths(g, k1000, repair_rng, repair_options);
  std::cout << "\nProblem 4 repair of the 1,000-broker set (epsilon = "
            << repair_options.epsilon << "):\n  deviation "
            << bsr::io::format_percent(repair.initial_deviation) << "% -> "
            << bsr::io::format_percent(repair.final_deviation) << "% with "
            << repair.added << " promoted brokers in " << repair.rounds
            << " rounds (" << (repair.feasible ? "feasible" : "budget-limited")
            << ")\n";
  return 0;
}
