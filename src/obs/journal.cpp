#include "obs/journal.hpp"

#include <algorithm>
#include <array>
#include <iostream>
#include <ostream>
#include <stdexcept>
#include <tuple>

#include "graph/check.hpp"
#include "obs/timeseries.hpp"

namespace bsr::obs {

namespace {

constexpr std::array<std::string_view, kNumEvents> kEventNames = {
#define BSR_OBS_X(id, name) name,
    BSR_OBS_EVENT_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
};

/// How many trailing records the BSR_DCHECK hook dumps before the abort.
constexpr std::size_t kBlackBoxTail = 32;

// Recording is single-threaded by contract (journal.hpp rule 3): only the
// simulation event loops emit, and those never run concurrently with each
// other or with the engine's worker shards. One plain global, no locks.
struct Recorder {
  std::vector<EventRecord> ring;  // sized to capacity while recording
  std::size_t capacity = 0;
  std::uint64_t recorded = 0;
  double clock = 0.0;
  double high_water = 0.0;
  bool enabled = false;
  IntervalSampler sampler;
};

Recorder& recorder() noexcept {
  static Recorder r;
  return r;
}

void black_box_dump() {
  std::cerr << "obs journal: flight-recorder tail at DCHECK failure\n";
  dump_journal_tail(std::cerr, kBlackBoxTail);
}

}  // namespace

std::string_view name(Event e) noexcept {
  return kEventNames[static_cast<std::size_t>(e)];
}

void start_recording(const JournalOptions& options) {
  if (options.capacity == 0) {
    throw std::invalid_argument("start_recording: capacity must be > 0");
  }
  if (options.series_interval < 0.0) {
    throw std::invalid_argument("start_recording: series_interval must be >= 0");
  }
  Recorder& r = recorder();
  r.ring.assign(options.capacity, EventRecord{});
  r.capacity = options.capacity;
  r.recorded = 0;
  r.clock = 0.0;
  r.high_water = 0.0;
  r.sampler = IntervalSampler{};
  if (options.series_interval > 0.0) {
    r.sampler.begin(0.0, options.series_interval);
  }
  r.enabled = true;
  bsr::dcheck_failure_hook() = &black_box_dump;
}

void stop_recording() {
  Recorder& r = recorder();
  if (!r.enabled) return;
  r.enabled = false;
  r.sampler.finish(r.high_water);
  if (bsr::dcheck_failure_hook() == &black_box_dump) {
    bsr::dcheck_failure_hook() = nullptr;
  }
}

bool recording_enabled() noexcept { return recorder().enabled; }

void journal_set_time(double now) noexcept {
  Recorder& r = recorder();
  if (!r.enabled) return;
  r.clock = now;
  if (now > r.high_water) {
    r.high_water = now;
    r.sampler.advance(now);
  }
}

double journal_time() noexcept { return recorder().clock; }

void journal_event(Event e, double time, std::uint64_t subject,
                   std::uint64_t correlation) noexcept {
  Recorder& r = recorder();
  if (!r.enabled) return;
  r.ring[static_cast<std::size_t>(r.recorded % r.capacity)] =
      EventRecord{time, e, subject, correlation, r.recorded};
  ++r.recorded;
}

void journal_event_now(Event e, std::uint64_t subject,
                       std::uint64_t correlation) noexcept {
  journal_event(e, recorder().clock, subject, correlation);
}

namespace {

/// Surviving records in program (seq) order, oldest first.
std::vector<EventRecord> program_order() {
  const Recorder& r = recorder();
  std::vector<EventRecord> out;
  if (r.capacity == 0 || r.recorded == 0) return out;
  const std::uint64_t live = std::min<std::uint64_t>(r.recorded, r.capacity);
  out.reserve(static_cast<std::size_t>(live));
  const std::uint64_t oldest = r.recorded - live;
  for (std::uint64_t s = oldest; s < r.recorded; ++s) {
    out.push_back(r.ring[static_cast<std::size_t>(s % r.capacity)]);
  }
  return out;
}

}  // namespace

Journal snapshot_journal() {
  const Recorder& r = recorder();
  Journal j;
  j.events = program_order();
  j.recorded = r.recorded;
  const std::uint64_t live = std::min<std::uint64_t>(r.recorded, r.capacity);
  j.dropped = r.recorded - live;
  // The deterministic export key. Program order (seq) is the final tie-break
  // so the sort is a total order and the output byte-stable.
  std::sort(j.events.begin(), j.events.end(),
            [](const EventRecord& a, const EventRecord& b) {
              return std::tie(a.time, a.type, a.subject, a.seq) <
                     std::tie(b.time, b.type, b.subject, b.seq);
            });
  return j;
}

void dump_journal_tail(std::ostream& os, std::size_t max_events) {
  const Recorder& r = recorder();
  const std::vector<EventRecord> events = program_order();
  const std::size_t skip =
      events.size() > max_events ? events.size() - max_events : 0;
  os << "journal: " << r.recorded << " recorded, "
     << (r.recorded - events.size()) << " dropped, showing last "
     << (events.size() - skip) << "\n";
  for (std::size_t i = skip; i < events.size(); ++i) {
    const EventRecord& rec = events[i];
    os << "  [" << rec.seq << "] t=" << rec.time << " " << name(rec.type)
       << " subject=" << rec.subject << " corr=" << rec.correlation << "\n";
  }
}

const std::vector<SeriesRow>& journal_series() noexcept {
  return recorder().sampler.rows();
}

}  // namespace bsr::obs
