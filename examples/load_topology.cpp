// Example: run the pipeline on a topology loaded from disk.
//
// Users with a real AS-level dataset (CAIDA serial-1/serial-2 plus IXP
// memberships) can convert it once into the brokerset-topology format and
// feed it to every algorithm and bench. This example demonstrates the whole
// loop self-contained: generate -> save -> load -> verify identity -> select
// brokers on the loaded instance. Swap the `save` step for your own
// converter to run on real data.
#include <iostream>

#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "io/env.hpp"
#include "io/table.hpp"
#include "topology/serialization.hpp"

int main(int argc, char** argv) {
  const auto env = bsr::io::experiment_env();
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/brokerset_example.topo";

  if (argc <= 1) {
    // No input given: produce a demonstration snapshot first.
    auto config = bsr::topology::InternetConfig{}.scaled(std::min(env.scale, 0.05));
    config.seed = env.seed;
    const auto generated = bsr::topology::make_internet(config);
    bsr::topology::save_topology_file(path, generated);
    std::cout << "wrote demonstration topology to " << path << " ("
              << generated.num_vertices() << " vertices)\n";
  }

  std::cout << "loading " << path << "...\n";
  const auto topo = bsr::topology::load_topology_file(path);
  std::cout << "loaded: " << topo.num_ases << " ASes + " << topo.num_ixps
            << " IXPs, " << topo.graph.num_edges() << " edges, peer fraction "
            << bsr::io::format_percent(topo.relations.peer_fraction()) << "%\n";

  const std::uint32_t k = std::max<std::uint32_t>(4, topo.num_vertices() / 50);
  const auto result = bsr::broker::maxsg(topo.graph, k);
  bsr::io::Table table({"metric", "value"});
  table.row()
      .cell("brokers selected")
      .cell(static_cast<std::uint64_t>(result.brokers.size()));
  table.row()
      .cell("largest dominated component")
      .cell(std::uint64_t{result.final_component});
  table.row()
      .cell("saturated E2E connectivity")
      .percent(bsr::broker::saturated_connectivity(topo.graph, result.brokers));
  table.print(std::cout);

  std::cout << "\nusage: load_topology [file.topo] — see "
               "topology/serialization.hpp for the format\n";
  return 0;
}
