// Algorithm 3 — MaxSubGraph-Greedy (MaxSG), the paper's linear-time heuristic.
//
// Each iteration adds the vertex w maximizing the size of the largest
// connected component of the dominated subgraph G_{B ∪ {w}}. Implementation:
// a union-find over active (broker-incident) edges is maintained
// incrementally; the candidate gain — the size of the component that would
// form around w — is the sum of the distinct component sizes of w and its
// neighbors, computed in O(deg(w)). One pass over all candidates per
// iteration gives the paper's O(k(|V| + |E|)) bound.
//
// Unlike coverage f, the component-size objective is NOT submodular (merging
// grows future gains), so lazy evaluation is unsound here and a full
// candidate sweep per round is required.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::broker {

struct MaxSgOptions {
  /// Stop early once the dominated component covers every vertex reachable
  /// in the underlying graph (paper: MaxSG "totally dominates the maximum
  /// connected subgraph" and stops at 3,540 brokers).
  bool stop_when_dominating = true;
};

struct MaxSgResult {
  BrokerSet brokers;  // selection order preserved
  /// largest dominated-component size after each pick.
  std::vector<std::uint32_t> component_curve;
  std::uint32_t final_component = 0;
  std::uint32_t coverage = 0;  // f(B) for the final set
};

/// Runs MaxSG with budget k. Throws std::invalid_argument for an empty graph.
[[nodiscard]] MaxSgResult maxsg(const bsr::graph::CsrGraph& g, std::uint32_t k,
                                const MaxSgOptions& options = {});

}  // namespace bsr::broker
