#include "broker/baselines.hpp"

#include <gtest/gtest.h>

#include "broker/coverage.hpp"
#include "graph/degree_stats.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_star;

topology::InternetTopology small_topo(std::uint64_t seed) {
  auto cfg = topology::InternetConfig{}.scaled(0.02);
  cfg.seed = seed;
  return topology::make_internet(cfg);
}

TEST(ScBaseline, ProducesDominatingSet) {
  const CsrGraph g = make_connected_random(80, 0.05, 1);
  Rng rng(2);
  const BrokerSet b = sc_dominating_set(g, rng);
  EXPECT_EQ(coverage(g, b), g.num_vertices());
}

TEST(ScBaseline, SizeVariesAcrossRuns) {
  const CsrGraph g = make_connected_random(200, 0.03, 3);
  Rng rng(4);
  std::size_t min_size = g.num_vertices(), max_size = 0;
  for (int run = 0; run < 20; ++run) {
    const auto size = sc_dominating_set(g, rng).size();
    min_size = std::min(min_size, size);
    max_size = std::max(max_size, size);
  }
  EXPECT_LT(min_size, max_size);  // Fig. 2a: a distribution, not a point
}

TEST(ScBaseline, SequentialRandomOrderIsLarge) {
  // On a star, random-order SC picks ~half the leaves before the center
  // dominates the rest — far from the optimal single-vertex set.
  const CsrGraph g = make_star(400);
  Rng rng(5);
  double total = 0;
  for (int run = 0; run < 10; ++run) {
    total += static_cast<double>(sc_dominating_set(g, rng).size());
  }
  EXPECT_GT(total / 10.0, 50.0);
}

TEST(DbBaseline, PicksHighestDegrees) {
  const CsrGraph g = make_connected_random(50, 0.08, 6);
  const BrokerSet b = db_top_degree(g, 5);
  ASSERT_EQ(b.size(), 5u);
  const auto order = bsr::graph::vertices_by_degree_desc(g);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_TRUE(b.contains(order[i]));
}

TEST(DbBaseline, BudgetBeyondGraphSize) {
  const CsrGraph g = make_star(6);
  EXPECT_EQ(db_top_degree(g, 100).size(), 6u);
}

TEST(PrbBaseline, PicksHighestPageRank) {
  const CsrGraph g = make_connected_random(50, 0.08, 7);
  const BrokerSet b = prb_top_pagerank(g, 4);
  EXPECT_EQ(b.size(), 4u);
  // On a star the center must come first.
  const CsrGraph star = make_star(9);
  const BrokerSet sb = prb_top_pagerank(star, 1);
  EXPECT_TRUE(sb.contains(0));
}

TEST(IxpbBaseline, SelectsOnlyIxps) {
  const auto topo = small_topo(11);
  const BrokerSet b = ixpb(topo);
  EXPECT_EQ(b.size(), topo.num_ixps);
  for (const NodeId v : b.members()) EXPECT_TRUE(topo.is_ixp(v));
}

TEST(IxpbBaseline, DegreeThresholdFilters) {
  const auto topo = small_topo(12);
  const BrokerSet all = ixpb(topo, 0);
  std::uint32_t max_degree = 0;
  for (NodeId v = topo.num_ases; v < topo.num_vertices(); ++v) {
    max_degree = std::max(max_degree, topo.graph.degree(v));
  }
  const BrokerSet top = ixpb(topo, max_degree);
  EXPECT_GE(top.size(), 1u);
  EXPECT_LE(top.size(), all.size());
  for (const NodeId v : top.members()) {
    EXPECT_GE(topo.graph.degree(v), max_degree);
  }
  EXPECT_TRUE(ixpb(topo, max_degree + 1).empty());
}

TEST(Tier1Baseline, SelectsExactlyTierOne) {
  const auto topo = small_topo(13);
  const BrokerSet b = tier1_only(topo);
  EXPECT_GT(b.size(), 0u);
  for (const NodeId v : b.members()) {
    EXPECT_EQ(topo.meta[v].tier, topology::Tier::kTier1);
  }
  std::size_t tier1_count = 0;
  for (NodeId v = 0; v < topo.num_ases; ++v) {
    if (topo.meta[v].tier == topology::Tier::kTier1) ++tier1_count;
  }
  EXPECT_EQ(b.size(), tier1_count);
}

TEST(Baselines, DeterministicGivenSeed) {
  const CsrGraph g = make_connected_random(60, 0.05, 14);
  Rng a(9), b(9);
  EXPECT_EQ(sc_dominating_set(g, a).size(), sc_dominating_set(g, b).size());
}

}  // namespace
}  // namespace bsr::broker
