// perf_scale — the Internet-scale kernel suite: locality renumbering,
// direction-optimizing BFS, and the anchor-cache MaxSG, measured at the
// paper's full topology (REPRO_SCALE=1.0, ~52k vertices) plus a 10x stress
// topology (~500k vertices, ~3.5M edges).
//
// Three head-to-head measurements, each verified bit-identical before the
// timed passes (the speedups are only meaningful because the answers are
// exactly equal):
//   1. fault-filtered BFS: classic top-down engine::bfs vs bfs_dir_opt on
//      the original labeling vs bfs_dir_opt on the degree-renumbered graph
//      (distances compared through the relabeling per source);
//   2. MaxSG: the pre-anchor snapshot-sweep implementation (verbatim copy
//      below) vs the live anchor-cache broker::maxsg vs the anchor cache on
//      the renumbered graph with original-id results;
//   3. greedy MCB: direct vs renumbered round-trip equality.
//
// Env knobs beyond the standard REPRO_*:
//   PERF_SCALE_STRESS=0   skip the 10x stress section (CI does; the
//                         committed BENCH_scale.json includes it)
//   SCALE_RESULTS_TXT=f   also write an integer-only results digest to f —
//                         byte-comparable across BSR_THREADS settings, which
//                         is how CI checks determinism with a plain `cmp`
//   BENCH_SCALE_JSON=f    override the BENCH_scale.json path
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "harness.hpp"
#include "broker/broker_set.hpp"
#include "broker/coverage.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "graph/components.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "graph/renumbering.hpp"
#include "graph/sampling.hpp"
#include "graph/union_find.hpp"
#include "io/table.hpp"
#include "topology/internet.hpp"
#include "topology/renumber.hpp"

namespace {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;
using bsr::graph::Renumbering;
namespace engine = bsr::graph::engine;

namespace snapshot {

// The pre-anchor-cache MaxSG, kept verbatim (minus telemetry) as the
// baseline under test: every round refreshes flat root/size snapshots and
// re-evaluates EVERY candidate's gain, O(k * (|V| + |E|)) total, vs the live
// implementation's amortized O(|V| + |E|) dirty-candidate recomputation.
bsr::broker::MaxSgResult maxsg(const CsrGraph& g, std::uint32_t k) {
  using bsr::graph::UnionFind;
  const NodeId n = g.num_vertices();

  bsr::broker::MaxSgResult result;
  result.brokers = bsr::broker::BrokerSet(n);
  if (k == 0) return result;

  const std::uint32_t reachable_ceiling =
      bsr::graph::connected_components(g).largest_size();

  UnionFind uf(n);
  std::vector<bool> is_broker(n, false);
  std::uint32_t largest = 0;

  std::vector<NodeId> root_of(n);
  std::vector<std::uint32_t> size_of(n);
  std::vector<std::uint32_t> root_stamp(n, 0);
  std::uint32_t epoch = 0;

  const auto candidate_gain = [&](NodeId w) -> std::uint32_t {
    ++epoch;
    std::uint32_t merged = 0;
    const NodeId rw = root_of[w];
    root_stamp[rw] = epoch;
    merged += size_of[rw];
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = root_of[v];
      if (root_stamp[r] != epoch) {
        root_stamp[r] = epoch;
        merged += size_of[r];
      }
    }
    return merged;
  };

  while (result.brokers.size() < k) {
    for (NodeId v = 0; v < n; ++v) root_of[v] = uf.find(v);
    for (NodeId v = 0; v < n; ++v) {
      if (root_of[v] == v) size_of[v] = uf.root_size(v);
    }
    NodeId best_vertex = kUnreachable;
    std::uint32_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      const std::uint32_t gain = candidate_gain(w);
      if (gain > best_gain) {
        best_gain = gain;
        best_vertex = w;
      }
    }
    if (best_vertex == kUnreachable) break;

    is_broker[best_vertex] = true;
    result.brokers.add(best_vertex);
    for (const NodeId v : g.neighbors(best_vertex)) uf.unite(best_vertex, v);
    largest = std::max(largest, uf.component_size(best_vertex));
    result.component_curve.push_back(largest);

    if (largest >= reachable_ceiling) break;
  }

  result.final_component = largest;
  result.coverage = bsr::broker::coverage(g, result.brokers);
  return result;
}

}  // namespace snapshot

/// FNV-1a over a stream of integers — the digest written to
/// SCALE_RESULTS_TXT so two runs can be compared with `cmp`.
class Digest {
 public:
  void add(std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      hash_ ^= (x >> (8 * b)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

struct BfsScale {
  double classic_s = 0.0;
  double diropt_s = 0.0;
  double renum_s = 0.0;
  std::uint64_t edges_scanned = 0;  // per repetition (classic accounting)
  std::uint64_t dist_digest = 0;    // over original-id (vertex, dist) pairs
  int reps = 0;

  [[nodiscard]] double meps(double seconds) const {
    return seconds > 0 ? double(edges_scanned) * reps / seconds / 1e6 : 0.0;
  }
  [[nodiscard]] double diropt_speedup() const { return classic_s / diropt_s; }
  [[nodiscard]] double renum_speedup() const { return classic_s / renum_s; }
};

/// Times the three BFS variants over the same fault plane and sources, after
/// an untimed pass proving every per-source distance array identical (the
/// renumbered run compared through the relabeling).
BfsScale bench_bfs(bsr::bench::Harness& harness, const std::string& label,
                   const CsrGraph& g, const bsr::graph::FaultPlane& plane,
                   const CsrGraph& g_ren, const bsr::graph::FaultPlane& plane_ren,
                   const Renumbering& ren, const std::vector<NodeId>& sources,
                   int reps) {
  const NodeId n = g.num_vertices();
  engine::Workspace ws(n);
  engine::Workspace ws_ren(n);
  const engine::FaultAwareFilter filt{&plane};
  const engine::FaultAwareFilter filt_ren{&plane_ren};

  BfsScale out;
  out.reps = reps;

  // Verification + accounting pass (untimed).
  Digest digest;
  std::vector<std::uint32_t> truth(n);
  for (const NodeId s : sources) {
    engine::bfs(g, s, ws, filt);
    for (NodeId v = 0; v < n; ++v) {
      truth[v] = ws.visited(v) ? ws.dist_unchecked(v) : kUnreachable;
      if (truth[v] != kUnreachable) digest.add((std::uint64_t(v) << 32) | truth[v]);
    }
    for (const NodeId v : ws.visit_order()) out.edges_scanned += g.degree(v);

    engine::bfs_dir_opt(g, s, ws, filt);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t d = ws.visited(v) ? ws.dist_unchecked(v) : kUnreachable;
      if (d != truth[v]) {
        std::cerr << "MISMATCH: dir-opt source " << s << " vertex " << v << ": "
                  << d << " vs classic " << truth[v] << "\n";
        std::exit(1);
      }
    }
    engine::bfs_dir_opt(g_ren, ren.to_new(s), ws_ren, filt_ren);
    for (NodeId v = 0; v < n; ++v) {
      const NodeId w = ren.to_new(v);
      const std::uint32_t d =
          ws_ren.visited(w) ? ws_ren.dist_unchecked(w) : kUnreachable;
      if (d != truth[v]) {
        std::cerr << "MISMATCH: renumbered dir-opt source " << s << " vertex "
                  << v << ": " << d << " vs classic " << truth[v] << "\n";
        std::exit(1);
      }
    }
  }
  out.dist_digest = digest.value();

  std::uint64_t sink = 0;  // defeats dead-code elimination
  out.classic_s = harness
                      .run(label + ".classic", reps,
                           [&] {
                             for (const NodeId s : sources) {
                               engine::bfs(g, s, ws, filt);
                               sink += ws.visit_order().size();
                             }
                           })
                      .wall_ms /
                  1e3;
  auto& diropt_run = harness.run(label + ".dir_opt", reps, [&] {
    for (const NodeId s : sources) {
      engine::bfs_dir_opt(g, s, ws, filt);
      sink += ws.visit_order().size();
    }
  });
  out.diropt_s = diropt_run.wall_ms / 1e3;
  auto& renum_run = harness.run(label + ".dir_opt_renum", reps, [&] {
    for (const NodeId s : sources) {
      engine::bfs_dir_opt(g_ren, ren.to_new(s), ws_ren, filt_ren);
      sink += ws_ren.visit_order().size();
    }
  });
  out.renum_s = renum_run.wall_ms / 1e3;
  bsr::bench::Harness::metric(diropt_run, "speedup", out.diropt_speedup());
  bsr::bench::Harness::metric(renum_run, "speedup", out.renum_speedup());
  if (sink == 0xdeadbeef) std::cerr << "";  // keep `sink` observable

  return out;
}

void print_bfs(const char* label, const BfsScale& b, std::size_t num_sources) {
  std::cout << label << " (" << num_sources << " sources x " << b.reps
            << " reps, " << b.edges_scanned << " edge scans/rep):\n"
            << "  classic top-down:      "
            << bsr::io::format_double(b.classic_s, 3) << "s  ("
            << bsr::io::format_double(b.meps(b.classic_s), 1) << " Medges/s)\n"
            << "  dir-opt:               "
            << bsr::io::format_double(b.diropt_s, 3) << "s  (x"
            << bsr::io::format_double(b.diropt_speedup(), 2) << ")\n"
            << "  dir-opt + renumbered:  "
            << bsr::io::format_double(b.renum_s, 3) << "s  (x"
            << bsr::io::format_double(b.renum_speedup(), 2) << ")\n\n";
}

std::string json_bfs(const BfsScale& b, std::size_t num_sources) {
  std::ostringstream json;
  json << "{\n"
       << "    \"sources\": " << num_sources << ",\n"
       << "    \"reps\": " << b.reps << ",\n"
       << "    \"edge_scans_per_rep\": " << b.edges_scanned << ",\n"
       << "    \"classic_seconds\": " << b.classic_s << ",\n"
       << "    \"dir_opt_seconds\": " << b.diropt_s << ",\n"
       << "    \"dir_opt_renum_seconds\": " << b.renum_s << ",\n"
       << "    \"classic_medges_per_sec\": " << b.meps(b.classic_s) << ",\n"
       << "    \"dir_opt_speedup\": " << b.diropt_speedup() << ",\n"
       << "    \"dir_opt_renum_speedup\": " << b.renum_speedup() << "\n"
       << "  }";
  return json.str();
}

/// Seeds the same Bernoulli(0.05) fault pattern on the original graph and,
/// through the relabeling, on the renumbered one — identical failed edge
/// sets, so filtered traversals are comparable.
void seed_faults(const CsrGraph& g, std::uint64_t seed,
                 bsr::graph::FaultPlane& plane, bsr::graph::FaultPlane& plane_ren,
                 const Renumbering& ren) {
  bsr::graph::Rng fault_rng(seed);
  for (const auto& e : g.edges()) {
    if (fault_rng.bernoulli(0.05)) {
      plane.fail_edge(e.u, e.v);
      const auto m = ren.map_edge_to_new(e);
      plane_ren.fail_edge(m.u, m.v);
    }
  }
}

bool maxsg_equal(const bsr::broker::MaxSgResult& a,
                 const bsr::broker::MaxSgResult& b) {
  return std::ranges::equal(a.brokers.members(), b.brokers.members()) &&
         a.component_curve == b.component_curve &&
         a.final_component == b.final_component && a.coverage == b.coverage;
}

void digest_maxsg(Digest& d, const bsr::broker::MaxSgResult& r) {
  for (const NodeId v : r.brokers.members()) d.add(v);
  for (const std::uint32_t c : r.component_curve) d.add(c);
  d.add(r.final_component);
  d.add(r.coverage);
}

}  // namespace

int main() {
  const auto ctx = bsr::bench::make_context(
      "perf_scale: renumbering + dir-opt BFS + anchor-cache MaxSG at scale");
  const CsrGraph& g = ctx.topo.graph;
  const NodeId n = g.num_vertices();
  std::cout << "threads: " << engine::num_threads() << " (BSR_THREADS)\n\n";
  bsr::bench::Harness harness("perf_scale", ctx);

  // --- locality renumbering ------------------------------------------------
  bsr::topology::RenumberedTopology renumbered;
  const double renumber_s =
      harness.run("renumber.pass",
                  [&] { renumbered = bsr::topology::renumber_topology(ctx.topo); })
          .wall_ms /
      1e3;
  const CsrGraph& g_ren = renumbered.topo.graph;
  const Renumbering& ren = renumbered.renumbering;
  const std::uint64_t gap_before = bsr::graph::total_neighbor_gap(g);
  const std::uint64_t gap_after = bsr::graph::total_neighbor_gap(g_ren);
  std::cout << "renumbering (degree-descending, AS/IXP segmented): "
            << bsr::io::format_double(renumber_s, 3) << "s\n"
            << "  avg neighbor-id gap: "
            << bsr::io::format_double(bsr::graph::average_neighbor_gap(g), 1)
            << " -> "
            << bsr::io::format_double(bsr::graph::average_neighbor_gap(g_ren), 1)
            << "\n\n";

  // --- fault-filtered BFS --------------------------------------------------
  bsr::graph::Rng rng(ctx.env.seed);
  const auto sources = bsr::graph::sample_distinct(
      rng, n, static_cast<NodeId>(std::min<std::size_t>(ctx.env.bfs_sources, n)));
  const int reps = 3;

  bsr::graph::FaultPlane plane(g);
  bsr::graph::FaultPlane plane_ren(g_ren);
  seed_faults(g, ctx.env.seed + 1, plane, plane_ren, ren);

  const BfsScale fault_bfs = bench_bfs(harness, "bfs.fault", g, plane, g_ren,
                                       plane_ren, ren, sources, reps);
  print_bfs("fault-filtered BFS", fault_bfs, sources.size());

  // --- MaxSG ---------------------------------------------------------------
  const auto k = static_cast<std::uint32_t>(std::max<NodeId>(32, n / 100));
  bsr::broker::MaxSgResult snapshot_result;
  const double snapshot_s =
      harness.run("maxsg.snapshot",
                  [&] { snapshot_result = snapshot::maxsg(g, k); })
          .wall_ms /
      1e3;
  bsr::broker::MaxSgResult anchor_result;
  const double anchor_s =
      harness.run("maxsg.anchor",
                  [&] { anchor_result = bsr::broker::maxsg(g, k); })
          .wall_ms /
      1e3;
  bsr::broker::MaxSgResult renum_result;
  bsr::broker::MaxSgOptions renum_options;
  renum_options.renumbering = &ren;
  const double maxsg_renum_s =
      harness.run("maxsg.anchor_renum",
                  [&] { renum_result = bsr::broker::maxsg(g_ren, k, renum_options); })
          .wall_ms /
      1e3;
  if (!maxsg_equal(snapshot_result, anchor_result) ||
      !maxsg_equal(snapshot_result, renum_result)) {
    std::cerr << "MISMATCH: MaxSG selections diverged between implementations\n";
    return 1;
  }
  const double maxsg_speedup = snapshot_s / anchor_s;
  const double maxsg_renum_speedup = snapshot_s / maxsg_renum_s;
  std::cout << "MaxSG (k=" << k << ", " << anchor_result.brokers.size()
            << " picked, final component " << anchor_result.final_component
            << "):\n"
            << "  snapshot full sweep:   "
            << bsr::io::format_double(snapshot_s, 3) << "s\n"
            << "  anchor cache:          " << bsr::io::format_double(anchor_s, 3)
            << "s  (x" << bsr::io::format_double(maxsg_speedup, 2) << ")\n"
            << "  anchor + renumbered:   "
            << bsr::io::format_double(maxsg_renum_s, 3) << "s  (x"
            << bsr::io::format_double(maxsg_renum_speedup, 2) << ")\n\n";

  // --- greedy MCB round-trip ----------------------------------------------
  const auto greedy_direct = bsr::broker::greedy_mcb(g, k);
  const auto greedy_renum = bsr::broker::greedy_mcb(g_ren, k, &ren);
  if (!std::ranges::equal(greedy_direct.brokers.members(),
                          greedy_renum.brokers.members()) ||
      greedy_direct.coverage_curve != greedy_renum.coverage_curve) {
    std::cerr << "MISMATCH: greedy MCB diverged under renumbering\n";
    return 1;
  }
  std::cout << "greedy MCB round-trip: OK (k=" << k << ", coverage "
            << greedy_direct.coverage << ")\n\n";

  // --- 10x stress topology -------------------------------------------------
  const char* stress_env = std::getenv("PERF_SCALE_STRESS");
  const bool run_stress = stress_env == nullptr || std::string(stress_env) != "0";
  std::ostringstream stress_json;
  Digest stress_digest;
  if (run_stress) {
    bsr::bench::Stopwatch stress_watch;
    const auto stress_config = ctx.config.scaled(10.0);
    const auto stress_topo = bsr::topology::make_internet(stress_config);
    const CsrGraph& sg = stress_topo.graph;
    const NodeId sn = sg.num_vertices();
    std::cout << "stress topology (10x): " << sn << " vertices, "
              << sg.num_edges() << " edges ("
              << bsr::io::format_double(stress_watch.seconds(), 1)
              << "s to generate)\n";

    auto stress_renumbered = bsr::topology::renumber_topology(stress_topo);
    const CsrGraph& sg_ren = stress_renumbered.topo.graph;
    const Renumbering& sren = stress_renumbered.renumbering;
    const std::uint64_t sgap_before = bsr::graph::total_neighbor_gap(sg);
    const std::uint64_t sgap_after = bsr::graph::total_neighbor_gap(sg_ren);

    bsr::graph::Rng stress_rng(ctx.env.seed);
    const auto stress_sources = bsr::graph::sample_distinct(
        stress_rng, sn, static_cast<NodeId>(std::min<std::size_t>(16, sn)));
    bsr::graph::FaultPlane splane(sg);
    bsr::graph::FaultPlane splane_ren(sg_ren);
    seed_faults(sg, ctx.env.seed + 1, splane, splane_ren, sren);
    const BfsScale stress_bfs = bench_bfs(harness, "stress.bfs.fault", sg, splane,
                                          sg_ren, splane_ren, sren,
                                          stress_sources, 1);
    print_bfs("stress fault-filtered BFS", stress_bfs, stress_sources.size());

    // Only the anchor-cache MaxSG runs at stress scale: the snapshot sweep's
    // O(k * (|V| + |E|)) would dominate the suite's wall time for a number
    // already established at scale 1.0.
    const std::uint32_t stress_k = 256;
    bsr::broker::MaxSgResult stress_direct;
    const double stress_maxsg_s =
        harness.run("stress.maxsg.anchor",
                    [&] { stress_direct = bsr::broker::maxsg(sg, stress_k); })
            .wall_ms /
        1e3;
    bsr::broker::MaxSgOptions stress_options;
    stress_options.renumbering = &sren;
    bsr::broker::MaxSgResult stress_renum;
    const double stress_maxsg_renum_s =
        harness.run("stress.maxsg.anchor_renum",
                    [&] {
                      stress_renum =
                          bsr::broker::maxsg(sg_ren, stress_k, stress_options);
                    })
            .wall_ms /
        1e3;
    if (!maxsg_equal(stress_direct, stress_renum)) {
      std::cerr << "MISMATCH: stress MaxSG diverged under renumbering\n";
      return 1;
    }
    std::cout << "stress MaxSG (k=" << stress_k << "): "
              << bsr::io::format_double(stress_maxsg_s, 3) << "s direct, "
              << bsr::io::format_double(stress_maxsg_renum_s, 3)
              << "s renumbered, final component "
              << stress_direct.final_component << "\n\n";

    stress_digest.add(sn);
    stress_digest.add(sg.num_edges());
    stress_digest.add(sgap_after);
    stress_digest.add(stress_bfs.dist_digest);
    digest_maxsg(stress_digest, stress_direct);

    stress_json << "{\n"
                << "    \"vertices\": " << sn << ",\n"
                << "    \"edges\": " << sg.num_edges() << ",\n"
                << "    \"gap_before\": " << sgap_before << ",\n"
                << "    \"gap_after\": " << sgap_after << ",\n"
                << "    \"bfs\": " << json_bfs(stress_bfs, stress_sources.size())
                << ",\n"
                << "    \"maxsg_k\": " << stress_k << ",\n"
                << "    \"maxsg_seconds\": " << stress_maxsg_s << ",\n"
                << "    \"maxsg_renum_seconds\": " << stress_maxsg_renum_s << ",\n"
                << "    \"maxsg_final_component\": "
                << stress_direct.final_component << "\n"
                << "  }";
  } else {
    std::cout << "stress section skipped (PERF_SCALE_STRESS=0)\n\n";
  }

  // --- deterministic digest (CI `cmp`s this across BSR_THREADS) ------------
  if (const char* txt_path = std::getenv("SCALE_RESULTS_TXT")) {
    Digest maxsg_digest;
    digest_maxsg(maxsg_digest, anchor_result);
    Digest renum_digest;
    digest_maxsg(renum_digest, renum_result);
    Digest greedy_digest;
    for (const NodeId v : greedy_direct.brokers.members()) greedy_digest.add(v);
    for (const std::uint32_t c : greedy_direct.coverage_curve)
      greedy_digest.add(c);

    std::ofstream txt(txt_path);
    txt << "vertices " << n << "\n"
        << "edges " << g.num_edges() << "\n"
        << "gap_before " << gap_before << "\n"
        << "gap_after " << gap_after << "\n"
        << "bfs_dist_digest " << fault_bfs.dist_digest << "\n"
        << "maxsg_digest " << maxsg_digest.value() << "\n"
        << "maxsg_renum_digest " << renum_digest.value() << "\n"
        << "greedy_digest " << greedy_digest.value() << "\n"
        << "greedy_coverage " << greedy_direct.coverage << "\n"
        << "stress_digest " << (run_stress ? stress_digest.value() : 0) << "\n";
    std::cout << "wrote " << txt_path << "\n";
  }

  // --- JSON artifact -------------------------------------------------------
  harness.metric("vertices", static_cast<double>(n));
  harness.metric("edges", static_cast<double>(g.num_edges()));
  harness.metric("gap_before", static_cast<double>(gap_before));
  harness.metric("gap_after", static_cast<double>(gap_after));
  harness.metric("bfs_dir_opt_speedup", fault_bfs.diropt_speedup());
  harness.metric("bfs_dir_opt_renum_speedup", fault_bfs.renum_speedup());
  harness.metric("maxsg_anchor_speedup", maxsg_speedup);
  harness.metric("maxsg_anchor_renum_speedup", maxsg_renum_speedup);
  harness.raw_section("filtered_bfs", json_bfs(fault_bfs, sources.size()));
  {
    std::ostringstream maxsg_json;
    maxsg_json << "{\n"
               << "    \"k\": " << k << ",\n"
               << "    \"picked\": " << anchor_result.brokers.size() << ",\n"
               << "    \"final_component\": " << anchor_result.final_component
               << ",\n"
               << "    \"snapshot_seconds\": " << snapshot_s << ",\n"
               << "    \"anchor_seconds\": " << anchor_s << ",\n"
               << "    \"anchor_renum_seconds\": " << maxsg_renum_s << ",\n"
               << "    \"speedup\": " << maxsg_speedup << ",\n"
               << "    \"renum_speedup\": " << maxsg_renum_speedup << "\n"
               << "  }";
    harness.raw_section("maxsg", maxsg_json.str());
  }
  if (run_stress) harness.raw_section("stress", stress_json.str());
  harness.write_json_file("BENCH_scale.json", "BENCH_SCALE_JSON");
  return 0;
}
