// Determinism contract for BSR_THREADS: sampled-source traversals must be
// bit-identical — not merely statistically equivalent — at any thread count.
// These tests exercise the same code path the env var toggles, via the
// set_num_threads() override.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "broker/broker_set.hpp"
#include "broker/dominated.hpp"
#include "graph/distance_histogram.hpp"
#include "graph/engine.hpp"
#include "graph/rng.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_connected_random;

/// Restores the environment-derived thread count even if a test fails.
struct ThreadGuard {
  ~ThreadGuard() { engine::set_num_threads(0); }
};

std::vector<NodeId> every_kth_vertex(NodeId n, NodeId k) {
  std::vector<NodeId> sources;
  for (NodeId v = 0; v < n; v += k) sources.push_back(v);
  return sources;
}

void expect_identical(const DistanceCdf& a, const DistanceCdf& b) {
  ASSERT_EQ(a.cdf.size(), b.cdf.size());
  for (std::size_t l = 0; l < a.cdf.size(); ++l) {
    EXPECT_EQ(a.cdf[l], b.cdf[l]) << "cdf diverges at l=" << l;
  }
  EXPECT_EQ(a.reachable, b.reachable);
  EXPECT_EQ(a.sources_used, b.sources_used);
}

TEST(EngineParallel, PlanShardsRespectsThreadCountAndWorkSize) {
  ThreadGuard guard;
  engine::set_num_threads(4);
  EXPECT_EQ(engine::num_threads(), 4);
  EXPECT_EQ(engine::plan_shards(100), 4u);
  EXPECT_EQ(engine::plan_shards(3), 3u);   // never more shards than items
  EXPECT_EQ(engine::plan_shards(0), 1u);   // degenerate work still gets a shard
  engine::set_num_threads(1);
  EXPECT_EQ(engine::plan_shards(100), 1u);
}

TEST(EngineParallel, ForEachShardPartitionsExactlyOnce) {
  ThreadGuard guard;
  for (const int threads : {1, 2, 8}) {
    engine::set_num_threads(threads);
    const std::size_t count = 37;  // deliberately not divisible by 2 or 8
    std::vector<int> hits(count, 0);
    engine::for_each_shard(count,
                           [&](std::size_t /*shard*/, std::size_t begin,
                               std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) ++hits[i];
                           });
    // Disjoint contiguous blocks covering [0, count): each item exactly once.
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(count));
    for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i], 1) << "item " << i;
  }
}

TEST(EngineParallel, UnfilteredCdfInvariantUnderThreadCount) {
  ThreadGuard guard;
  const CsrGraph g = make_connected_random(300, 0.015, 5);
  const auto sources = every_kth_vertex(g.num_vertices(), 3);

  engine::set_num_threads(1);
  const DistanceCdf serial =
      distance_cdf_from_sources_with(g, sources, engine::AllEdges{});
  for (const int threads : {2, 8}) {
    engine::set_num_threads(threads);
    expect_identical(
        distance_cdf_from_sources_with(g, sources, engine::AllEdges{}), serial);
  }
}

TEST(EngineParallel, DominatedCdfInvariantUnderThreadCount) {
  ThreadGuard guard;
  const CsrGraph g = make_connected_random(250, 0.02, 9);
  Rng rng(17);
  bsr::broker::BrokerSet brokers(g.num_vertices());
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (rng.bernoulli(0.2)) brokers.add(v);
  }
  const auto sources = every_kth_vertex(g.num_vertices(), 2);
  const engine::DominatedEdgeFilter filter{&brokers.mask()};

  engine::set_num_threads(1);
  const DistanceCdf serial = distance_cdf_from_sources_with(g, sources, filter);
  for (const int threads : {2, 8}) {
    engine::set_num_threads(threads);
    expect_identical(distance_cdf_from_sources_with(g, sources, filter), serial);
  }
}

TEST(EngineParallel, LegacyEdgeFilterOverloadInvariantUnderThreadCount) {
  // The std::function shim dispatches into the same sharded kernel; it must
  // inherit the invariance.
  ThreadGuard guard;
  const CsrGraph g = make_connected_random(200, 0.02, 23);
  std::vector<bool> mask(g.num_vertices(), false);
  Rng rng(31);
  for (NodeId v = 0; v < g.num_vertices(); ++v) mask[v] = rng.bernoulli(0.3);
  const EdgeFilter legacy = [&mask](NodeId u, NodeId v) {
    return mask[u] || mask[v];
  };
  const auto sources = every_kth_vertex(g.num_vertices(), 2);

  engine::set_num_threads(1);
  const DistanceCdf serial = distance_cdf_from_sources(g, sources, legacy);
  engine::set_num_threads(8);
  expect_identical(distance_cdf_from_sources(g, sources, legacy), serial);
}

TEST(EngineParallel, DominatedDistanceCdfEndToEndInvariant) {
  // Full broker-layer entry point (sampled sources + dominated filter), the
  // path BSR_THREADS actually accelerates in experiments.
  ThreadGuard guard;
  const CsrGraph g = make_connected_random(220, 0.02, 41);
  bsr::broker::BrokerSet brokers(g.num_vertices());
  Rng pick(7);
  for (int i = 0; i < 30; ++i) {
    brokers.add(static_cast<NodeId>(pick.uniform(g.num_vertices())));
  }

  engine::set_num_threads(1);
  Rng rng_serial(1234);
  const DistanceCdf serial =
      bsr::broker::dominated_distance_cdf(g, brokers, rng_serial, 64);
  for (const int threads : {2, 8}) {
    engine::set_num_threads(threads);
    Rng rng_parallel(1234);  // identical seed => identical sampled sources
    expect_identical(
        bsr::broker::dominated_distance_cdf(g, brokers, rng_parallel, 64),
        serial);
  }
}

TEST(EngineParallel, SetNumThreadsZeroRestoresEnvironmentValue) {
  const int env_value = engine::num_threads();
  engine::set_num_threads(6);
  EXPECT_EQ(engine::num_threads(), 6);
  engine::set_num_threads(0);
  EXPECT_EQ(engine::num_threads(), env_value);
}

}  // namespace
}  // namespace bsr::graph
