#include "broker/verify.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "broker/coverage.hpp"
#include "graph/bfs.hpp"
#include "graph/rollback_union_find.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

bool is_dominating_path(const CsrGraph& g, const BrokerSet& b,
                        std::span<const NodeId> path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const NodeId u = path[i];
    const NodeId v = path[i + 1];
    if (u >= g.num_vertices() || v >= g.num_vertices()) return false;
    if (!g.has_edge(u, v)) return false;
    if (!b.dominates_edge(u, v)) return false;
  }
  return true;
}

bool has_pairwise_guarantee(const CsrGraph& g, const BrokerSet& b) {
  if (b.empty()) return true;  // vacuous: B ∪ N(B) pairs need B non-empty
  // Rollback flavor: find() is const, so the component scan below can't
  // mutate the forest out from under the covered bitmap pass.
  bsr::graph::RollbackUnionFind uf(g.num_vertices());
  std::vector<bool> covered(g.num_vertices(), false);
  for (const NodeId u : b.members()) {
    covered[u] = true;
    for (const NodeId v : g.neighbors(u)) {
      covered[v] = true;
      uf.unite(u, v);
    }
  }
  // Guarantee holds iff all covered vertices share one dominated component.
  NodeId reference = bsr::graph::kUnreachable;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    if (!covered[v]) continue;
    const NodeId root = uf.find(v);
    if (reference == bsr::graph::kUnreachable) {
      reference = root;
    } else if (root != reference) {
      return false;
    }
  }
  return true;
}

namespace {

constexpr std::uint32_t kBruteForceLimit = 22;

template <typename Admissible>
std::uint32_t brute_force_best(const CsrGraph& g, std::uint32_t k,
                               Admissible&& admissible) {
  const NodeId n = g.num_vertices();
  if (n > kBruteForceLimit) {
    throw std::invalid_argument("brute force: graph too large (> 22 vertices)");
  }
  std::uint32_t best = 0;
  const std::uint64_t limit = 1ull << n;
  std::vector<NodeId> members;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    if (static_cast<std::uint32_t>(std::popcount(bits)) > k) continue;
    members.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (bits & (1ull << v)) members.push_back(v);
    }
    const BrokerSet candidate(n, members);
    if (!admissible(candidate)) continue;
    best = std::max(best, coverage(g, candidate));
  }
  return best;
}

}  // namespace

std::uint32_t brute_force_mcb_optimum(const CsrGraph& g, std::uint32_t k) {
  return brute_force_best(g, k, [](const BrokerSet&) { return true; });
}

std::uint32_t brute_force_mcbg_optimum(const CsrGraph& g, std::uint32_t k) {
  return brute_force_best(
      g, k, [&g](const BrokerSet& b) { return has_pairwise_guarantee(g, b); });
}

// --- r-survivability --------------------------------------------------------

namespace {

std::uint64_t canonical_edge_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Σ over DFS components of (size choose 2) in the dominated subgraph of the
/// vertices flagged in `broker`, skipping edges present in `dead_edges`.
std::uint64_t dominated_pairs_dfs(
    const CsrGraph& g, const std::vector<bool>& broker,
    const std::unordered_set<std::uint64_t>* dead_edges) {
  const NodeId n = g.num_vertices();
  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack;
  std::uint64_t pairs = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::uint64_t size = 0;
    seen[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      ++size;
      for (const NodeId v : g.neighbors(u)) {
        if (seen[v]) continue;
        if (!broker[u] && !broker[v]) continue;
        if (dead_edges != nullptr &&
            dead_edges->contains(canonical_edge_key(u, v))) {
          continue;
        }
        seen[v] = true;
        stack.push_back(v);
      }
    }
    pairs += size * (size - 1) / 2;
  }
  return pairs;
}

}  // namespace

std::uint64_t brute_force_surviving_pairs(const CsrGraph& g, const BrokerSet& b,
                                          std::uint32_t r) {
  if (b.size() > kBruteForceLimit) {
    throw std::invalid_argument("brute force: broker set too large (> 22 members)");
  }
  if (b.size() <= r) return 0;  // the adversary can take down every broker
  const auto members = b.members();
  const std::uint64_t limit = 1ull << b.size();
  std::uint64_t worst = std::numeric_limits<std::uint64_t>::max();
  std::vector<bool> broker(g.num_vertices(), false);
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    if (static_cast<std::uint32_t>(std::popcount(bits)) != r) continue;
    std::fill(broker.begin(), broker.end(), false);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if ((bits & (1ull << i)) == 0) broker[members[i]] = true;
    }
    worst = std::min(worst, dominated_pairs_dfs(g, broker, nullptr));
  }
  return worst;
}

std::uint64_t brute_force_group_surviving_pairs(
    const CsrGraph& g, const BrokerSet& b,
    std::span<const bsr::graph::FailureGroup> groups) {
  if (groups.empty()) {
    throw std::invalid_argument("brute force: no failure groups");
  }
  std::vector<bool> broker(g.num_vertices(), false);
  for (const NodeId m : b.members()) broker[m] = true;
  std::uint64_t worst = std::numeric_limits<std::uint64_t>::max();
  for (const bsr::graph::FailureGroup& group : groups) {
    std::unordered_set<std::uint64_t> dead;
    dead.reserve(group.edges.size());
    for (const bsr::graph::Edge& e : group.edges) {
      dead.insert(canonical_edge_key(e.u, e.v));
    }
    worst = std::min(worst, dominated_pairs_dfs(g, broker, &dead));
  }
  return worst;
}

std::uint64_t brute_force_robust_optimum(const CsrGraph& g, std::uint32_t k,
                                         std::uint32_t r) {
  const NodeId n = g.num_vertices();
  if (n > kBruteForceLimit) {
    throw std::invalid_argument("brute force: graph too large (> 22 vertices)");
  }
  std::uint64_t best = 0;
  const std::uint64_t limit = 1ull << n;
  std::vector<NodeId> members;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    if (static_cast<std::uint32_t>(std::popcount(bits)) > k) continue;
    members.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (bits & (1ull << v)) members.push_back(v);
    }
    const BrokerSet candidate(n, members);
    best = std::max(best, brute_force_surviving_pairs(g, candidate, r));
  }
  return best;
}

}  // namespace bsr::broker
