#include "graph/workspace.hpp"

#include <algorithm>

#include "obs/stats.hpp"

namespace bsr::graph::engine {

void Workspace::ensure(NodeId n) {
  if (n <= capacity()) return;
  // New entries get stamp 0, which never equals a live epoch (epochs start
  // at 1), so grown slots read as unvisited/unmarked.
  dist_.resize(n, kUnreachable);
  parent_.resize(n, kUnreachable);
  stamp_.resize(n, 0);
  mark_stamp_.resize(n, 0);
  queue_.reserve(n);
}

void Workspace::begin(NodeId n) {
  ensure(n);
  if (++epoch_ == 0) {  // wrap: re-zero once per ~4B traversals
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  queue_.clear();
  stats_edges_scanned = 0;
  BSR_COUNT(EngineWorkspaceEpochBumps);
  BSR_GAUGE_MAX(EngineWorkspaceHighWater, capacity());
}

std::vector<std::uint64_t>& Workspace::visited_bits(NodeId n) {
  visited_bits_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
  return visited_bits_;
}

std::vector<std::uint64_t>& Workspace::frontier_bits(NodeId n) {
  frontier_bits_.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
  return frontier_bits_;
}

void Workspace::begin_marks(NodeId n) {
  ensure(n);
  if (++mark_epoch_ == 0) {
    std::fill(mark_stamp_.begin(), mark_stamp_.end(), 0u);
    mark_epoch_ = 1;
  }
  BSR_COUNT(EngineWorkspaceEpochBumps);
  BSR_GAUGE_MAX(EngineWorkspaceHighWater, capacity());
}

}  // namespace bsr::graph::engine
