#include "topology/er.hpp"

#include <stdexcept>
#include <unordered_set>

#include "graph/graph_builder.hpp"

namespace bsr::topology {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::graph::Rng;

CsrGraph make_er(std::uint32_t num_vertices, std::uint64_t num_edges,
                 std::uint64_t seed) {
  if (num_vertices < 2) throw std::invalid_argument("make_er: need >= 2 vertices");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(num_vertices) * (num_vertices - 1) / 2;
  num_edges = std::min(num_edges, max_edges);

  Rng rng(seed);
  GraphBuilder builder(num_vertices);
  builder.reserve(num_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    auto u = static_cast<NodeId>(rng.uniform(num_vertices));
    auto v = static_cast<NodeId>(rng.uniform(num_vertices - 1));
    if (v >= u) ++v;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) builder.add_edge(u, v);
  }
  return builder.build();
}

}  // namespace bsr::topology
