#include "graph/kcore.hpp"

#include <algorithm>

namespace bsr::graph {

std::vector<std::uint32_t> coreness(const CsrGraph& g) {
  const NodeId n = g.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by current degree (Matula–Beck / Batagelj–Zaversnik).
  std::vector<std::uint32_t> bin(static_cast<std::size_t>(max_degree) + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bin[degree[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> order(n);       // vertices sorted by degree
  std::vector<std::uint32_t> pos(n);  // position of each vertex in `order`
  for (NodeId v = 0; v < n; ++v) {
    pos[v] = bin[degree[v]];
    order[pos[v]] = v;
    ++bin[degree[v]];
  }
  for (std::uint32_t d = max_degree; d > 0; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  std::vector<std::uint32_t> core = degree;
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    core[v] = degree[v];
    for (const NodeId u : g.neighbors(v)) {
      if (degree[u] > degree[v]) {
        // Move u one bucket down: swap it with the first vertex of its bucket.
        const std::uint32_t du = degree[u];
        const std::uint32_t pu = pos[u];
        const std::uint32_t pw = bin[du];
        const NodeId w = order[pw];
        if (u != w) {
          std::swap(order[pu], order[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --degree[u];
      }
    }
  }
  return core;
}

std::uint32_t degeneracy(const CsrGraph& g) {
  if (g.num_vertices() == 0) return 0;
  const auto core = coreness(g);
  return *std::max_element(core.begin(), core.end());
}

}  // namespace bsr::graph
