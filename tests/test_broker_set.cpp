#include "broker/broker_set.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bsr::broker {
namespace {

using bsr::graph::NodeId;

TEST(BrokerSet, EmptySet) {
  const BrokerSet b(10);
  EXPECT_EQ(b.num_vertices(), 10u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(b.contains(3));
}

TEST(BrokerSet, ConstructionFromMembersKeepsOrder) {
  const std::vector<NodeId> members{5, 2, 9};
  const BrokerSet b(10, members);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.contains(5));
  EXPECT_TRUE(b.contains(2));
  EXPECT_FALSE(b.contains(0));
  ASSERT_EQ(b.members().size(), 3u);
  EXPECT_EQ(b.members()[0], 5u);
  EXPECT_EQ(b.members()[1], 2u);
  EXPECT_EQ(b.members()[2], 9u);
}

TEST(BrokerSet, RejectsBadMembers) {
  const std::vector<NodeId> out_of_range{10};
  EXPECT_THROW(BrokerSet(10, out_of_range), std::out_of_range);
  const std::vector<NodeId> duplicate{1, 1};
  EXPECT_THROW(BrokerSet(10, duplicate), std::invalid_argument);
}

TEST(BrokerSet, AddReportsNovelty) {
  BrokerSet b(5);
  EXPECT_TRUE(b.add(3));
  EXPECT_FALSE(b.add(3));
  EXPECT_THROW(b.add(5), std::out_of_range);
  EXPECT_EQ(b.size(), 1u);
}

TEST(BrokerSet, ContainsOutOfRangeIsFalse) {
  const BrokerSet b(5);
  EXPECT_FALSE(b.contains(1000));
}

TEST(BrokerSet, PrefixTakesSelectionOrder) {
  const std::vector<NodeId> members{4, 1, 3, 0};
  const BrokerSet b(5, members);
  const BrokerSet p = b.prefix(2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.contains(4));
  EXPECT_TRUE(p.contains(1));
  EXPECT_FALSE(p.contains(3));
  EXPECT_EQ(b.prefix(100).size(), 4u);
  EXPECT_TRUE(b.prefix(0).empty());
}

TEST(BrokerSet, UniteMergesWithoutDuplicates) {
  const std::vector<NodeId> ma{1, 2}, mb{2, 3};
  const BrokerSet a(5, ma), b(5, mb);
  const BrokerSet u = a.unite(b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_TRUE(u.contains(1));
  EXPECT_TRUE(u.contains(3));
}

TEST(BrokerSet, UniteRejectsSizeMismatch) {
  const BrokerSet a(5), b(6);
  EXPECT_THROW(a.unite(b), std::invalid_argument);
}

TEST(BrokerSet, DominatesEdge) {
  BrokerSet b(4);
  b.add(1);
  EXPECT_TRUE(b.dominates_edge(1, 2));
  EXPECT_TRUE(b.dominates_edge(0, 1));
  EXPECT_FALSE(b.dominates_edge(2, 3));
}

}  // namespace
}  // namespace bsr::broker
