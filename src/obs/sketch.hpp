// Deterministic streaming quantile sketches for the telemetry plane.
//
// The counter registry (stats.hpp) totals work; the power-of-two histograms
// there are too coarse (one bucket per octave) to answer "what is the p99
// query cost". QuantileSketch is the missing distribution primitive: a
// DDSketch-style log-bucketed sketch over unsigned integer values with a
// *fixed-point* bucket map — every observation lands in one of 1920
// compile-time buckets, merging two sketches is a bucket-wise integer add,
// and every extracted quantile is a bucket lower bound. No floating point
// touches the data path, so:
//
//   1. Merge is commutative and associative bit-for-bit. Per-shard sketches
//      merged in any order produce the identical byte pattern, which is what
//      keeps exports byte-identical at any BSR_THREADS value.
//   2. Quantiles carry a guaranteed relative error. Buckets subdivide each
//      octave into 32 linear steps (kSubBits = 5), so for any value v the
//      bucket lower bound L satisfies L <= v < L + max(1, L/32): quantile()
//      underestimates by at most a factor of 1/32 (~3.1%).
//   3. The representation is the whole state. count + sum + buckets — no
//      cached extrema, no lazy fields — so equality, delta (bucket-wise
//      subtract) and snapshotting are trivial and exact.
//
// Like the journal (journal.hpp rule 3), the *global* sketch registry below
// is written only from single-threaded control paths (RouteService::tally
// runs after the worker shards join), so plain unsynchronized state is
// correct. BSR_SKETCH sites compile to nothing under BSR_STATS=OFF; the
// QuantileSketch class itself stays linkable either way so harnesses and
// tests build in both modes.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/stats.hpp"

namespace bsr::obs {

class QuantileSketch {
 public:
  /// Sub-bucket resolution: each power-of-two octave is split into
  /// 2^kSubBits linear buckets, bounding the relative error at 2^-kSubBits.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;

  /// Values below 2 * kSubBuckets are exact (one bucket per value, using the
  /// first two octaves' worth of indices); above, bucket (q, r) covers
  /// [(kSubBuckets + r) << (q - 1), ...). The top octave (bit_width 64) maps
  /// to q = 64 - kSubBits, so the whole uint64 range needs
  /// (65 - kSubBits) * kSubBuckets buckets.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>((65 - kSubBits) * kSubBuckets);

  /// Index of the bucket holding `v`. Monotone in v.
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned m = std::bit_width(v) - 1;  // m >= kSubBits + 1
    return static_cast<std::size_t>(
        ((m - kSubBits) << kSubBits) + (v >> (m - kSubBits)));
  }

  /// Smallest value mapping to bucket `idx` (the canonical representative
  /// every extraction returns). Inverse of bucket_of on bucket lower bounds.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < 2 * kSubBuckets) return static_cast<std::uint64_t>(idx);
    const std::uint64_t q = static_cast<std::uint64_t>(idx) >> kSubBits;
    const std::uint64_t r = static_cast<std::uint64_t>(idx) & (kSubBuckets - 1);
    return (kSubBuckets + r) << (q - 1);
  }

  void observe(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
  }

  /// Bucket-wise integer add: commutative, associative, bit-exact.
  void merge(const QuantileSketch& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  void clear() noexcept { *this = QuantileSketch{}; }

  /// Bucket-wise `*this - before`. Exact whenever `before` is an earlier
  /// state of this sketch (no clear in between).
  [[nodiscard]] QuantileSketch delta_since(const QuantileSketch& before) const noexcept {
    QuantileSketch out;
    out.count_ = count_ - before.count_;
    out.sum_ = sum_ - before.sum_;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      out.buckets_[i] = buckets_[i] - before.buckets_[i];
    }
    return out;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Lower bound of the bucket holding the ceil(q * count)-th smallest
  /// observation (q clamped to [0, 1]); 0 on an empty sketch. The returned
  /// value L satisfies L <= x_q < L + max(1, L >> kSubBits) for the exact
  /// q-quantile x_q.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
  /// Lower bounds of the extreme occupied buckets; 0 on an empty sketch.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  friend bool operator==(const QuantileSketch& a, const QuantileSketch& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ && a.buckets_ == b.buckets_;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

// --- fixed-slot sketch registry ---------------------------------------------
// X(EnumId, "layer.component.metric") — same convention as the counter
// tables. Per-answer-tag tick costs and distance bounds of the
// route-serving plane, plus the episode reconstructor's critical-path
// phase durations in milli-time-units (episode.hpp); append one X(...)
// line to add a slot.

#define BSR_OBS_SKETCH_TABLE(X)                                    \
  X(RouteTicksFresh, "sim.route_service.ticks.fresh")              \
  X(RouteTicksStale, "sim.route_service.ticks.stale_served")       \
  X(RouteTicksShedded, "sim.route_service.ticks.shedded")          \
  X(RouteTicksRefused, "sim.route_service.ticks.refused")          \
  X(RouteDistFresh, "sim.route_service.dist.fresh")                \
  X(RouteDistStale, "sim.route_service.dist.stale_served")         \
  X(EpisodeDetectMs, "obs.episode.detect_ms")                      \
  X(EpisodeReactMs, "obs.episode.react_ms")                        \
  X(EpisodeQueueMs, "obs.episode.queue_ms")                        \
  X(EpisodeExecMs, "obs.episode.exec_ms")                          \
  X(EpisodeDrainMs, "obs.episode.drain_ms")

enum class Sketch : std::uint16_t {
#define BSR_OBS_X(id, name) k##id,
  BSR_OBS_SKETCH_TABLE(BSR_OBS_X)
#undef BSR_OBS_X
      kCount
};

inline constexpr std::size_t kNumSketches = static_cast<std::size_t>(Sketch::kCount);

[[nodiscard]] std::string_view name(Sketch s) noexcept;

/// The merged registry state: one sketch per fixed slot.
using SketchSnapshot = std::array<QuantileSketch, kNumSketches>;

namespace detail {
/// The global slots. Single-threaded by contract (journal.hpp rule 3): only
/// control paths record, never worker shards — one plain leaked global, no
/// locks, same shape as the journal's Recorder. Inline so sketch_observe
/// compiles to a handful of adds at per-answer sites instead of an
/// out-of-line registry call.
[[nodiscard]] inline SketchSnapshot& sketch_registry() noexcept {
  static SketchSnapshot* slots = new SketchSnapshot();  // leaked: no dtor order
  return *slots;
}
}  // namespace detail

/// Records `v` into the global slot. Single-threaded control paths only
/// (journal.hpp rule 3) — worker shards must never call this directly.
inline void sketch_observe(Sketch s, std::uint64_t v) noexcept {
  detail::sketch_registry()[static_cast<std::size_t>(s)].observe(v);
}

/// Read-only view of one global slot (live; same quiescence contract as
/// stats.hpp snapshot()).
[[nodiscard]] const QuantileSketch& sketch(Sketch s) noexcept;

[[nodiscard]] SketchSnapshot snapshot_sketches();
void reset_sketches();

/// Bucket-wise `after - before` for every slot. Valid whenever `before` was
/// snapshotted earlier than `after` with no reset in between.
[[nodiscard]] SketchSnapshot sketch_delta(const SketchSnapshot& before,
                                          const SketchSnapshot& after);

}  // namespace bsr::obs

// BSR_SKETCH(id, v) — record one observation into a registry slot. Empty
// statement under BSR_STATS=OFF, like every other obs site.
#if BSR_STATS_ENABLED
#define BSR_SKETCH(id, v)                              \
  ::bsr::obs::sketch_observe(::bsr::obs::Sketch::k##id, \
                             static_cast<std::uint64_t>(v))
#else
#define BSR_SKETCH(id, v) \
  do {                    \
  } while (false)
#endif
