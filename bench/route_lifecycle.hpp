// Shared route-service lifecycle for perf_obs's twin comparison.
//
// One function template, instantiated once per twin (bare::BareRouteService
// and instr::InstrRouteService), so both sides of the overhead measurement
// run the exact same token stream: fresh serving, a broker fault with
// degraded (stale) serving, and the rebuilt epoch — the same three-tier
// lifecycle the recorded route_service.instrumented run pins.
//
// The result separates serve-phase time from the whole lifecycle: the
// oracle builds inside the constructor and advance() are BFS/union-find
// kernels whose telemetry is priced by perf_obs's dedicated BFS comparison
// already, and at bench scales they dwarf the query loop — folding them
// into one number would let build wall-time drown the per-query cost that
// the tracer and the sketches actually add. serve_seconds times only the
// serve_batch calls; each serve point runs `serve_reps` identical batches
// so the timed region is long enough for min-of-trials to converge.
//
// The digest is folded inline rather than through sim::answer_digest because
// each twin TU renames that symbol (bare_answer_digest / instr_answer_digest)
// and the template must compile identically in both. Same FNV-1a fold over
// the same (status, reachable, dist_bound, next_hop, epoch) tuple; the tick
// fields are deliberately excluded so the digest matches answer_digest's
// cross-thread contract rather than re-pinning the cost model.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "sim/demand.hpp"

namespace bsr::bench {

struct RouteLifecycleResult {
  std::uint64_t digest = 0;
  double serve_seconds = 0.0;  // serve_batch calls only, builds excluded
};

template <class Service, class Answer>
RouteLifecycleResult run_route_lifecycle(const bsr::graph::CsrGraph& g,
                                         const bsr::broker::BrokerSet& brokers,
                                         std::span<const bsr::sim::Flow> flows,
                                         int serve_reps = 1) {
  using Clock = std::chrono::steady_clock;
  bsr::graph::FaultPlane faults(g);
  Service service(g, brokers, &faults);
  std::vector<Answer> answers;
  RouteLifecycleResult result;

  std::uint64_t digest = 14695981039346656037ull;
  const auto fold = [&digest](std::uint64_t v) {
    digest ^= v;
    digest *= 1099511628211ull;
  };
  const auto fold_batch = [&] {
    for (const Answer& a : answers) {
      fold(static_cast<std::uint64_t>(a.status));
      fold(a.reachable ? 1u : 0u);
      fold(a.dist_bound);
      fold(a.next_hop);
      fold(a.epoch);
    }
  };
  // Repeated batches at one serve point are identical (admission is off in
  // the default config, so `now` only stamps telemetry): rep count changes
  // the timed work, never the digest.
  const auto serve = [&](double now) {
    const auto begin = Clock::now();
    for (int r = 0; r < serve_reps; ++r) {
      service.serve_batch(flows, now, answers);
    }
    result.serve_seconds +=
        std::chrono::duration<double>(Clock::now() - begin).count();
    fold_batch();
  };

  serve(0.0);  // fresh epoch
  faults.fail_vertex(brokers.members()[0]);
  service.on_fault(1.0);
  serve(1.5);  // degraded, stale-served
  while (service.next_event_time() <= 1e9) {
    service.advance(service.next_event_time());
  }
  serve(20.0);  // rebuilt epoch, fresh again
  fold(service.epoch_id());
  result.digest = digest;
  return result;
}

}  // namespace bsr::bench
