#include "sim/churn.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "broker/dominated.hpp"
#include "broker/resilience.hpp"

namespace bsr::sim {

using bsr::broker::BrokerSet;
using bsr::graph::FailureGroup;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::graph::Rng;

namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Pending heal, earliest first.
struct Heal {
  double time = 0.0;
  std::size_t group = 0;
  friend bool operator>(const Heal& a, const Heal& b) { return a.time > b.time; }
};

}  // namespace

ChurnResult simulate_churn(const bsr::graph::CsrGraph& g, const BrokerSet& initial,
                           const ChurnConfig& config, Rng& rng) {
  return simulate_churn(g, initial, config, LinkChurnConfig{}, {}, rng);
}

ChurnResult simulate_churn(const bsr::graph::CsrGraph& g, const BrokerSet& initial,
                           const ChurnConfig& config, const LinkChurnConfig& link,
                           std::span<const FailureGroup> groups, Rng& rng) {
  if (config.departure_rate <= 0.0 || config.repair_interval <= 0.0 ||
      config.horizon <= 0.0) {
    throw std::invalid_argument("simulate_churn: rates/horizon must be positive");
  }
  const bool link_churn = link.outage_rate > 0.0;
  if (link_churn && (groups.empty() || link.mean_downtime <= 0.0)) {
    throw std::invalid_argument(
        "simulate_churn: link churn needs failure groups and positive downtime");
  }

  ChurnResult result;
  BrokerSet current = initial;
  FaultPlane faults(g);
  std::priority_queue<Heal, std::vector<Heal>, std::greater<Heal>> heals;

  // One persistent evaluator for the whole simulation: `current` and
  // `faults` are held by reference and re-read on rebuild(), so per-event
  // connectivity costs a union-find reset + broker-star sweep with zero
  // allocations (the legacy path constructed a fresh UnionFind per event).
  bsr::broker::DominatedEvaluator evaluator(g, current, &faults);

  double now = 0.0;
  double next_departure = rng.exponential(config.departure_rate);
  double next_repair = config.repair_interval;
  double next_outage = link_churn ? rng.exponential(link.outage_rate) : kNever;
  double connectivity = evaluator.connectivity();
  result.min_connectivity = connectivity;
  double weighted_sum = 0.0;

  const auto advance_to = [&](double t) {
    weighted_sum += connectivity * (t - now);
    now = t;
  };
  const auto record = [&](ChurnEvent::Kind kind) {
    evaluator.rebuild();
    connectivity = evaluator.connectivity();
    result.events.push_back({now, kind, current.size(), connectivity,
                             faults.num_failed_edges()});
    result.min_connectivity = std::min(result.min_connectivity, connectivity);
  };

  while (true) {
    const double next_heal = heals.empty() ? kNever : heals.top().time;
    const double next_time =
        std::min(std::min(next_departure, next_repair),
                 std::min(next_outage, next_heal));
    if (next_time > config.horizon) {
      advance_to(config.horizon);
      break;
    }
    advance_to(next_time);

    if (next_heal <= next_time) {
      const Heal heal = heals.top();
      heals.pop();
      faults.heal_group(groups[heal.group]);
      ++result.link_heals;
      record(ChurnEvent::Kind::kLinkHeal);
    } else if (next_outage <= next_time) {
      const auto group = static_cast<std::size_t>(rng.uniform(groups.size()));
      faults.fail_group(groups[group]);
      heals.push({now + rng.exponential(1.0 / link.mean_downtime), group});
      ++result.link_outages;
      record(ChurnEvent::Kind::kLinkOutage);
      next_outage = now + rng.exponential(link.outage_rate);
    } else if (next_departure <= next_repair) {
      // One uniformly random broker departs (if any remain).
      if (!current.empty()) {
        current = bsr::broker::fail_brokers(g, current, 1,
                                            bsr::broker::FailureMode::kRandom, rng);
        ++result.departures;
        record(ChurnEvent::Kind::kDeparture);
      }
      next_departure = now + rng.exponential(config.departure_rate);
    } else {
      const std::size_t before = current.size();
      current = bsr::broker::repair_brokers(g, current, config.repair_budget, faults);
      ++result.repairs;
      result.replacements_added += current.size() - before;
      record(ChurnEvent::Kind::kRepair);
      next_repair = now + config.repair_interval;
    }
  }

  result.mean_connectivity = weighted_sum / config.horizon;
  return result;
}

}  // namespace bsr::sim
