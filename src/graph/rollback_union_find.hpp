// Rollback-capable disjoint-set forest (union by size + undo log).
//
// The classic union-find trade-off: path compression makes find O(alpha)
// but destroys the information needed to undo a union. This variant keeps
// union by size only (find is O(log n)) and records every successful unite
// in an undo log, so any suffix of unions can be rolled back in O(1) each.
// That turns "evaluate candidate C against the current dominated subgraph"
// from a full O(|E_B|) reconstruction into
//     checkpoint -> unite C's star -> read metrics -> rollback,
// which is what MaxSG candidate probing, 1-swap local search, and
// damage-aware repair all need.
//
// The merge rule (attach the smaller root under the larger; ties attach the
// second root under the first) is byte-identical to graph::UnionFind, so the
// two produce the same root ids and component sizes for the same unite
// sequence — a property the dedup between the exact-connectivity and
// component-histogram paths relies on.
//
// connected_pairs() maintains Σ_c (|c| choose 2) incrementally as an exact
// 64-bit integer; saturated connectivity is then a single O(1) division
// instead of an O(V) component scan. For |V| ≤ ~90M the count is below 2^53,
// so converting to double is exact and matches the legacy per-component
// double summation bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/check.hpp"
#include "graph/csr_graph.hpp"
#include "obs/stats.hpp"

namespace bsr::graph {

class RollbackUnionFind {
 public:
  explicit RollbackUnionFind(NodeId n) { reset(n); }

  /// Resets to n singleton components and clears the undo log.
  void reset(NodeId n);

  [[nodiscard]] NodeId size() const noexcept {
    return static_cast<NodeId>(parent_.size());
  }

  /// Root of v's component. No path compression, so const; O(log n).
  [[nodiscard]] NodeId find(NodeId v) const noexcept {
    BSR_DCHECK(v < parent_.size());
    BSR_STATS_ONLY(std::uint64_t steps = 0;)
    while (parent_[v] != v) {
      v = parent_[v];
      BSR_STATS_ONLY(++steps;)
    }
    BSR_UF_FIND(steps);
    return v;
  }

  /// Merges the components of u and v; returns true if they were distinct.
  bool unite(NodeId u, NodeId v) noexcept {
    BSR_COUNT(UfUnites);
    NodeId ru = find(u);
    NodeId rv = find(v);
    if (ru == rv) return false;
    if (size_[ru] < size_[rv]) std::swap(ru, rv);  // same rule as UnionFind
    parent_[rv] = ru;
    connected_pairs_ +=
        static_cast<std::uint64_t>(size_[ru]) * static_cast<std::uint64_t>(size_[rv]);
    size_[ru] += size_[rv];
    --num_components_;
    log_.push_back({rv, ru});
    BSR_COUNT(UfUnionsApplied);
    BSR_GAUGE_MAX(UfLogHighWater, log_.size());
    return true;
  }

  [[nodiscard]] bool connected(NodeId u, NodeId v) const noexcept {
    return find(u) == find(v);
  }

  [[nodiscard]] std::uint32_t component_size(NodeId v) const noexcept {
    return size_[find(v)];
  }

  /// Size of the component rooted at r; precondition: r is a root.
  [[nodiscard]] std::uint32_t root_size(NodeId r) const noexcept {
    BSR_DCHECK(r < parent_.size() && parent_[r] == r);
    return size_[r];
  }

  [[nodiscard]] NodeId num_components() const noexcept { return num_components_; }

  /// Σ over components of (size choose 2) — pairs connected right now.
  [[nodiscard]] std::uint64_t connected_pairs() const noexcept {
    return connected_pairs_;
  }

  /// Size of the largest component (0 iff empty). O(V).
  [[nodiscard]] std::uint32_t largest_component_size() const noexcept;

  // --- rollback ------------------------------------------------------------

  /// Opaque undo-log position; capture before speculative unions.
  using Checkpoint = std::size_t;

  [[nodiscard]] Checkpoint checkpoint() const noexcept {
    BSR_COUNT(UfCheckpoints);
    return log_.size();
  }

  /// Undoes every union applied after `mark`, most recent first. O(undone).
  void rollback(Checkpoint mark) noexcept {
    BSR_DCHECK(mark <= log_.size());
    BSR_COUNT(UfRollbacks);
    BSR_COUNT_N(UfRollbackUndone, log_.size() - mark);
    while (log_.size() > mark) {
      const UndoEntry e = log_.back();
      log_.pop_back();
      parent_[e.child] = e.child;
      size_[e.parent] -= size_[e.child];
      connected_pairs_ -= static_cast<std::uint64_t>(size_[e.parent]) *
                          static_cast<std::uint64_t>(size_[e.child]);
      ++num_components_;
    }
  }

 private:
  struct UndoEntry {
    NodeId child;   // root that was attached ...
    NodeId parent;  // ... under this root
  };

  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> size_;
  std::vector<UndoEntry> log_;
  NodeId num_components_ = 0;
  std::uint64_t connected_pairs_ = 0;
};

}  // namespace bsr::graph
