#include "topology/ws.hpp"

#include <stdexcept>
#include <unordered_set>

#include "graph/graph_builder.hpp"
#include "graph/rng.hpp"

namespace bsr::topology {

using bsr::graph::CsrGraph;
using bsr::graph::GraphBuilder;
using bsr::graph::NodeId;
using bsr::graph::Rng;

CsrGraph make_ws(std::uint32_t num_vertices, std::uint32_t k, double beta,
                 std::uint64_t seed) {
  if (num_vertices < 4) throw std::invalid_argument("make_ws: need >= 4 vertices");
  if (k < 2 || k % 2 != 0 || k >= num_vertices) {
    throw std::invalid_argument("make_ws: k must be even, >= 2 and < n");
  }
  if (beta < 0.0 || beta > 1.0) throw std::invalid_argument("make_ws: beta in [0, 1]");

  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  const auto key_of = [](NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };

  GraphBuilder builder(num_vertices);
  builder.reserve(static_cast<std::size_t>(num_vertices) * k / 2);
  for (NodeId u = 0; u < num_vertices; ++u) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_vertices);
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform random non-self target avoiding duplicates;
        // keep the lattice edge if no free target is found quickly.
        for (int attempt = 0; attempt < 32; ++attempt) {
          auto w = static_cast<NodeId>(rng.uniform(num_vertices));
          if (w == u || seen.contains(key_of(u, w))) continue;
          v = w;
          break;
        }
      }
      if (seen.insert(key_of(u, v)).second) builder.add_edge(u, v);
    }
  }
  return builder.build();
}

}  // namespace bsr::topology
