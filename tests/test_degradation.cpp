#include <gtest/gtest.h>

#include "broker/maxsg.hpp"
#include "graph/bfs.hpp"
#include "graph/fault_plane.hpp"
#include "sim/router.hpp"
#include "test_util.hpp"

namespace bsr::sim {
namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::graph::Rng;
using bsr::test::make_connected_random;
using bsr::test::make_path;

TEST(Degradation, IntactPlaneServesDominatedTier) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  b.add(2);
  FaultPlane plane(g);
  Router router(g, b, &plane);
  const TieredRoute r = router.route_with_degradation(0, 3, {});
  EXPECT_EQ(r.tier, RouteTier::kDominated);
  EXPECT_EQ(r.healed_links, 0u);
  ASSERT_TRUE(r.route.reachable());
  EXPECT_EQ(r.route.hops(), 3u);
}

TEST(Degradation, FailedLinkConsumesOneHealAttempt) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  b.add(2);
  FaultPlane plane(g);
  ASSERT_TRUE(plane.fail_edge(1, 2));
  Router router(g, b, &plane);

  DegradationPolicy one_heal;
  one_heal.heal_attempts = 1;
  const TieredRoute degraded = router.route_with_degradation(0, 3, one_heal);
  EXPECT_EQ(degraded.tier, RouteTier::kDegraded);
  EXPECT_EQ(degraded.healed_links, 1u);
  ASSERT_TRUE(degraded.route.reachable());
  EXPECT_EQ(degraded.route.path, (std::vector<NodeId>{0, 1, 2, 3}));

  // With no heals, the free plane is also severed at 1-2: nothing connects.
  DegradationPolicy no_heals;
  no_heals.heal_attempts = 0;
  const TieredRoute lost = router.route_with_degradation(0, 3, no_heals);
  EXPECT_EQ(lost.tier, RouteTier::kUnreachable);
  EXPECT_FALSE(lost.route.reachable());
}

TEST(Degradation, UndominatedPairFallsBackToFreePlane) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);  // edge 2-3 is undominated — no dominating path to 3
  FaultPlane plane(g);
  Router router(g, b, &plane);

  const TieredRoute r = router.route_with_degradation(0, 3, {});
  EXPECT_EQ(r.tier, RouteTier::kFreeFallback);
  ASSERT_TRUE(r.route.reachable());
  EXPECT_EQ(r.route.hops(), 3u);

  DegradationPolicy strict;
  strict.allow_free_fallback = false;
  EXPECT_EQ(router.route_with_degradation(0, 3, strict).tier,
            RouteTier::kUnreachable);
}

TEST(Degradation, HealsDoNotLiftDominationRequirement) {
  // Edge 2-3 is undominated and *intact*: a degraded route may only cross
  // failed dominated links, so (0, 3) must still fall back to the free plane.
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  FaultPlane plane(g);
  ASSERT_TRUE(plane.fail_edge(0, 1));
  Router router(g, b, &plane);
  DegradationPolicy generous;
  generous.heal_attempts = 10;
  generous.allow_free_fallback = false;
  EXPECT_EQ(router.route_with_degradation(0, 3, generous).tier,
            RouteTier::kUnreachable);
}

TEST(Degradation, FailedEndpointIsUnreachable) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  b.add(2);
  FaultPlane plane(g);
  plane.fail_vertex(3);
  Router router(g, b, &plane);
  DegradationPolicy generous;
  generous.heal_attempts = 5;
  EXPECT_EQ(router.route_with_degradation(0, 3, generous).tier,
            RouteTier::kUnreachable);
  EXPECT_EQ(router.route_with_degradation(3, 0, generous).tier,
            RouteTier::kUnreachable);
}

TEST(Degradation, SamePairIsTriviallyDominated) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  FaultPlane plane(g);
  plane.fail_edge(0, 1);
  Router router(g, b, &plane);
  const TieredRoute r = router.route_with_degradation(2, 2, {});
  EXPECT_EQ(r.tier, RouteTier::kDominated);
  EXPECT_EQ(r.route.path, (std::vector<NodeId>{2}));
}

TEST(Degradation, RoutesSatisfyTierInvariants) {
  const CsrGraph g = make_connected_random(50, 0.1, 19);
  const BrokerSet b = bsr::broker::maxsg(g, 10).brokers;
  FaultPlane plane(g);
  Rng rng(20);
  for (const bsr::graph::Edge& e : g.edges()) {
    if (rng.bernoulli(0.2)) plane.fail_edge(e.u, e.v);
  }
  Router router(g, b, &plane);
  DegradationPolicy policy;
  policy.heal_attempts = 2;

  for (NodeId src = 0; src < 25; ++src) {
    const NodeId dst = 49 - src;
    const TieredRoute r = router.route_with_degradation(src, dst, policy);
    if (!r.route.reachable()) {
      EXPECT_EQ(r.tier, RouteTier::kUnreachable);
      continue;
    }
    ASSERT_EQ(r.route.path.front(), src);
    ASSERT_EQ(r.route.path.back(), dst);
    std::uint32_t failed_hops = 0;
    for (std::size_t i = 0; i + 1 < r.route.path.size(); ++i) {
      const NodeId u = r.route.path[i];
      const NodeId v = r.route.path[i + 1];
      ASSERT_TRUE(g.has_edge(u, v)) << u << "-" << v;
      EXPECT_TRUE(plane.vertex_ok(u));
      EXPECT_TRUE(plane.vertex_ok(v));
      if (!plane.edge_ok(u, v)) ++failed_hops;
      if (r.tier != RouteTier::kFreeFallback) {
        EXPECT_TRUE(b.dominates_edge(u, v));
      }
    }
    switch (r.tier) {
      case RouteTier::kDominated:
        EXPECT_EQ(failed_hops, 0u);
        EXPECT_EQ(r.healed_links, 0u);
        break;
      case RouteTier::kDegraded:
        EXPECT_GE(failed_hops, 1u);
        EXPECT_LE(failed_hops, policy.heal_attempts);
        EXPECT_EQ(failed_hops, r.healed_links);
        break;
      case RouteTier::kFreeFallback:
        EXPECT_EQ(failed_hops, 0u);
        // A fallback pair must genuinely lack an intact dominated route.
        EXPECT_FALSE(router.route_dominated(src, dst).reachable());
        break;
      case RouteTier::kUnreachable:
        ADD_FAILURE() << "reachable route tagged unreachable";
        break;
    }
  }
}

TEST(Degradation, TiersMatchBruteForceOnRebuiltGraph) {
  const CsrGraph g = make_connected_random(40, 0.12, 23);
  const BrokerSet b = bsr::broker::maxsg(g, 8).brokers;
  FaultPlane plane(g);
  Rng rng(24);
  for (const bsr::graph::Edge& e : g.edges()) {
    if (rng.bernoulli(0.3)) plane.fail_edge(e.u, e.v);
  }
  const CsrGraph damaged = plane.materialize();
  Router fault_router(g, b, &plane);
  Router brute_router(damaged, b);

  DegradationPolicy no_heals;  // kDominated / kFreeFallback must agree exactly
  no_heals.heal_attempts = 0;
  for (NodeId src = 0; src < 20; ++src) {
    const NodeId dst = 39 - src;
    const TieredRoute r = fault_router.route_with_degradation(src, dst, no_heals);
    const bool brute_dominated = brute_router.route_dominated(src, dst).reachable();
    const bool brute_free = brute_router.route_free(src, dst).reachable();
    if (brute_dominated) {
      EXPECT_EQ(r.tier, RouteTier::kDominated);
    } else if (brute_free) {
      EXPECT_EQ(r.tier, RouteTier::kFreeFallback);
    } else {
      EXPECT_EQ(r.tier, RouteTier::kUnreachable);
    }
  }
}

TEST(Degradation, LargerHealBudgetNeverWorsensTier) {
  const CsrGraph g = make_connected_random(40, 0.1, 29);
  const BrokerSet b = bsr::broker::maxsg(g, 8).brokers;
  FaultPlane plane(g);
  Rng rng(30);
  for (const bsr::graph::Edge& e : g.edges()) {
    if (rng.bernoulli(0.25)) plane.fail_edge(e.u, e.v);
  }
  Router router(g, b, &plane);
  for (NodeId src = 0; src < 15; ++src) {
    const NodeId dst = 39 - src;
    DegradationPolicy small, large;
    small.heal_attempts = 1;
    large.heal_attempts = 4;
    const auto tier_small = router.route_with_degradation(src, dst, small).tier;
    const auto tier_large = router.route_with_degradation(src, dst, large).tier;
    EXPECT_LE(static_cast<int>(tier_large), static_cast<int>(tier_small));
  }
}

TEST(Degradation, WithoutFaultPlaneCollapsesToTwoTiers) {
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  Router router(g, b);  // no plane at all
  EXPECT_EQ(router.route_with_degradation(0, 2, {}).tier, RouteTier::kDominated);
  EXPECT_EQ(router.route_with_degradation(0, 3, {}).tier,
            RouteTier::kFreeFallback);
}

TEST(Degradation, TierSharesSumToSampledPairs) {
  const CsrGraph g = make_connected_random(60, 0.08, 31);
  const BrokerSet b = bsr::broker::maxsg(g, 12).brokers;
  FaultPlane plane(g);
  Rng fail_rng(32);
  for (const bsr::graph::Edge& e : g.edges()) {
    if (fail_rng.bernoulli(0.2)) plane.fail_edge(e.u, e.v);
  }
  Router router(g, b, &plane);
  Rng pair_rng(33);
  const TierShares shares = sample_tier_shares(router, pair_rng, 200, {});
  EXPECT_EQ(shares.pairs, 200u);
  EXPECT_EQ(shares.dominated + shares.degraded + shares.free_fallback +
                shares.unreachable,
            shares.pairs);
  EXPECT_DOUBLE_EQ(shares.fraction(shares.dominated) +
                       shares.fraction(shares.degraded) +
                       shares.fraction(shares.free_fallback) +
                       shares.fraction(shares.unreachable),
                   1.0);
}

TEST(Degradation, TierTracksInterleavedFailHealSequence) {
  // One pair walked through the whole tier ladder and back: each fail
  // pushes (0, 3) down a tier, each heal lifts it — the router re-reads the
  // plane on every call, so tiers must track the interleaving exactly.
  const CsrGraph g = make_path(4);
  BrokerSet b(4);
  b.add(1);
  b.add(2);
  FaultPlane plane(g);
  Router router(g, b, &plane);
  DegradationPolicy policy;
  policy.heal_attempts = 1;
  const auto tier = [&] {
    return router.route_with_degradation(0, 3, policy).tier;
  };

  EXPECT_EQ(tier(), RouteTier::kDominated);
  ASSERT_TRUE(plane.fail_edge(1, 2));
  EXPECT_EQ(tier(), RouteTier::kDegraded);  // one heal bridges the cut
  ASSERT_TRUE(plane.fail_edge(2, 3));
  EXPECT_EQ(tier(), RouteTier::kUnreachable);  // two cuts beat the budget
  ASSERT_TRUE(plane.heal_edge(1, 2));
  EXPECT_EQ(tier(), RouteTier::kDegraded);  // heal arrives mid-degradation
  ASSERT_TRUE(plane.heal_edge(2, 3));
  EXPECT_EQ(tier(), RouteTier::kDominated);  // full recovery

  // Vertex loss interleaved with link loss: failing broker 2 severs the
  // dominated plane outright; healing it mid-sequence restores service even
  // while an (undominated-tier) link fault persists elsewhere.
  ASSERT_TRUE(plane.fail_vertex(2));
  EXPECT_EQ(tier(), RouteTier::kUnreachable);
  ASSERT_TRUE(plane.fail_edge(0, 1));
  ASSERT_TRUE(plane.heal_vertex(2));
  EXPECT_EQ(tier(), RouteTier::kDegraded);  // back up, healing the 0-1 cut
  ASSERT_TRUE(plane.heal_edge(0, 1));
  EXPECT_EQ(tier(), RouteTier::kDominated);
  EXPECT_TRUE(plane.pristine());
}

TEST(Degradation, RandomFailHealStormMatchesMaterializedTruth) {
  // Interleave random fails and heals; after every step the incremental
  // router must agree tier-for-tier with a fresh router on the materialized
  // damaged graph (no stale state can survive a heal).
  const CsrGraph g = make_connected_random(30, 0.12, 47);
  const BrokerSet b = bsr::broker::maxsg(g, 6).brokers;
  FaultPlane plane(g);
  Router router(g, b, &plane);
  Rng rng(48);
  DegradationPolicy no_heals;
  no_heals.heal_attempts = 0;

  std::vector<bsr::graph::Edge> down;
  const auto edges = g.edges();
  for (int step = 0; step < 60; ++step) {
    if (down.empty() || rng.bernoulli(0.6)) {
      const auto& e = edges[rng.uniform(edges.size())];
      if (plane.fail_edge(e.u, e.v)) down.push_back(e);
    } else {
      const auto pick = rng.uniform(down.size());
      plane.heal_edge(down[pick].u, down[pick].v);
      down.erase(down.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    const CsrGraph damaged = plane.materialize();
    Router brute(damaged, b);
    for (NodeId src = 0; src < 10; ++src) {
      const NodeId dst = 29 - src;
      const auto tier = router.route_with_degradation(src, dst, no_heals).tier;
      if (brute.route_dominated(src, dst).reachable()) {
        EXPECT_EQ(tier, RouteTier::kDominated);
      } else if (brute.route_free(src, dst).reachable()) {
        EXPECT_EQ(tier, RouteTier::kFreeFallback);
      } else {
        EXPECT_EQ(tier, RouteTier::kUnreachable);
      }
    }
  }
}

TEST(Degradation, RouteTierToStringIsStable) {
  EXPECT_STREQ(to_string(RouteTier::kDominated), "dominated");
  EXPECT_STREQ(to_string(RouteTier::kDegraded), "degraded");
  EXPECT_STREQ(to_string(RouteTier::kFreeFallback), "free-fallback");
  EXPECT_STREQ(to_string(RouteTier::kUnreachable), "unreachable");
}

}  // namespace
}  // namespace bsr::sim
