// Plain-text edge list serialization.
//
// Format: one "u v" pair per line; '#' starts a comment; blank lines are
// skipped. This is the interchange format for dumping the synthetic topology
// and for loading user-supplied AS-level graphs (e.g. the real CAIDA data if
// the user has it) into the same pipeline.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hpp"

namespace bsr::io {

/// Writes `g` to a stream as an edge list (canonical u < v lines).
void write_edge_list(std::ostream& os, const bsr::graph::CsrGraph& g);

/// Writes to a file; throws std::runtime_error on IO failure.
void write_edge_list_file(const std::string& path, const bsr::graph::CsrGraph& g);

/// Parses an edge list. Vertex ids may be sparse/arbitrary non-negative
/// integers; they are compacted to dense ids preserving numeric order.
/// Tolerates CRLF line endings. Throws std::runtime_error with line context
/// on malformed input: non-numeric or negative ids, ids overflowing the
/// 64-bit raw range, missing/trailing tokens, or more distinct vertices
/// than NodeId can address.
[[nodiscard]] bsr::graph::CsrGraph read_edge_list(std::istream& is);

[[nodiscard]] bsr::graph::CsrGraph read_edge_list_file(const std::string& path);

}  // namespace bsr::io
