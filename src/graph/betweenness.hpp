// Approximate betweenness centrality (Brandes' algorithm over sampled
// sources).
//
// Betweenness is the natural "who carries the paths" centrality and a
// stronger baseline than degree or PageRank for broker selection: a vertex
// with high betweenness sits on many shortest paths, which is close to what
// domination needs. The ablation bench contrasts a betweenness-based
// selection (BB) with the paper's DB/PRB baselines.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::graph {

/// Betweenness scores estimated from `num_sources` sampled source pivots
/// (exact if num_sources >= |V|). Unnormalized (scaled by the sampling
/// ratio so relative order matches the exact values in expectation).
/// O(num_sources * (|V| + |E|)).
[[nodiscard]] std::vector<double> betweenness(const CsrGraph& g, Rng& rng,
                                              std::size_t num_sources);

/// Exact betweenness (every vertex a pivot). Small graphs / tests.
[[nodiscard]] std::vector<double> betweenness_exact(const CsrGraph& g);

/// Vertices sorted by descending betweenness (deterministic tie-break).
[[nodiscard]] std::vector<NodeId> vertices_by_betweenness_desc(
    const CsrGraph& g, Rng& rng, std::size_t num_sources);

}  // namespace bsr::graph
