#include "broker/coverage.hpp"

#include <cassert>

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

std::uint32_t coverage(const CsrGraph& g, const BrokerSet& b) {
  assert(b.num_vertices() == g.num_vertices());
  std::vector<bool> covered(g.num_vertices(), false);
  std::uint32_t count = 0;
  const auto mark = [&](NodeId v) {
    if (!covered[v]) {
      covered[v] = true;
      ++count;
    }
  };
  for (const NodeId v : b.members()) {
    mark(v);
    for (const NodeId w : g.neighbors(v)) mark(w);
  }
  return count;
}

CoverageTracker::CoverageTracker(const CsrGraph& g)
    : graph_(&g),
      brokers_(g.num_vertices(), false),
      covered_(g.num_vertices(), false) {}

std::uint32_t CoverageTracker::marginal_gain(NodeId v) const {
  assert(v < graph_->num_vertices());
  std::uint32_t gain = covered_[v] ? 0 : 1;
  for (const NodeId w : graph_->neighbors(v)) {
    if (!covered_[w]) ++gain;
  }
  return gain;
}

std::uint32_t CoverageTracker::add(NodeId v) {
  assert(v < graph_->num_vertices());
  if (brokers_[v]) return 0;
  brokers_[v] = true;
  std::uint32_t gain = 0;
  const auto mark = [&](NodeId w) {
    if (!covered_[w]) {
      covered_[w] = true;
      ++gain;
    }
  };
  mark(v);
  for (const NodeId w : graph_->neighbors(v)) mark(w);
  covered_count_ += gain;
  return gain;
}

}  // namespace bsr::broker
