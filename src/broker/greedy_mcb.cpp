#include "broker/greedy_mcb.hpp"

#include <queue>
#include <stdexcept>

#include "broker/coverage.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

GreedyMcbResult greedy_mcb(const CsrGraph& g, std::uint32_t k) {
  BSR_SPAN("broker.greedy_mcb");
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("greedy_mcb: empty graph");

  GreedyMcbResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  CoverageTracker tracker(g);

  // Lazy greedy: heap entries carry the iteration at which the gain was
  // computed; submodularity guarantees gains only shrink, so a stale top
  // entry is an upper bound and can be refreshed in place.
  struct Entry {
    std::uint32_t gain;
    NodeId vertex;
    std::uint32_t stamp;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return vertex > other.vertex;  // deterministic tie-break: lowest id wins
    }
  };
  std::priority_queue<Entry> heap;
  BSR_STATS_ONLY(std::uint64_t evals = 0;)
  for (NodeId v = 0; v < n; ++v) {
    BSR_STATS_ONLY(++evals;)
    heap.push(Entry{tracker.marginal_gain(v), v, 0});
  }

  std::uint32_t round = 0;
  while (result.brokers.size() < k && !heap.empty() && !tracker.all_covered()) {
    Entry top = heap.top();
    heap.pop();
    if (tracker.is_broker(top.vertex)) continue;
    if (top.stamp != round) {
      BSR_STATS_ONLY(++evals;)
      top.gain = tracker.marginal_gain(top.vertex);
      top.stamp = round;
      if (top.gain == 0) continue;  // nothing new to cover from this vertex
      heap.push(top);
      continue;
    }
    tracker.add(top.vertex);
    result.brokers.add(top.vertex);
    result.coverage_curve.push_back(tracker.covered_count());
    BSR_COUNT(GreedyRounds);
    ++round;
  }
  BSR_COUNT_N(GreedyGainEvals, evals);
  result.coverage = tracker.covered_count();
  return result;
}

}  // namespace bsr::broker
