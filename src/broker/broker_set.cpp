#include "broker/broker_set.hpp"

#include <stdexcept>

#include "graph/renumbering.hpp"

namespace bsr::broker {

using bsr::graph::NodeId;

BrokerSet::BrokerSet(NodeId num_vertices, std::span<const NodeId> members)
    : mask_(num_vertices, false) {
  members_.reserve(members.size());
  for (const NodeId v : members) {
    if (v >= num_vertices) throw std::out_of_range("BrokerSet: member out of range");
    if (mask_[v]) throw std::invalid_argument("BrokerSet: duplicate member");
    mask_[v] = true;
    members_.push_back(v);
  }
}

bool BrokerSet::add(NodeId v) {
  if (v >= mask_.size()) throw std::out_of_range("BrokerSet::add: out of range");
  if (mask_[v]) return false;
  mask_[v] = true;
  members_.push_back(v);
  return true;
}

BrokerSet BrokerSet::prefix(std::size_t k) const {
  BrokerSet out(num_vertices());
  const std::size_t take = std::min(k, members_.size());
  for (std::size_t i = 0; i < take; ++i) out.add(members_[i]);
  return out;
}

BrokerSet BrokerSet::unite(const BrokerSet& other) const {
  if (other.num_vertices() != num_vertices()) {
    throw std::invalid_argument("BrokerSet::unite: vertex-count mismatch");
  }
  BrokerSet out = *this;
  for (const NodeId v : other.members_) out.add(v);
  return out;
}

namespace {

void check_sizes(const bsr::graph::Renumbering& ren, const BrokerSet& b) {
  if (ren.size() != b.num_vertices()) {
    throw std::invalid_argument("BrokerSet renumber: size mismatch");
  }
}

}  // namespace

BrokerSet renumber_to_new(const bsr::graph::Renumbering& ren, const BrokerSet& b) {
  check_sizes(ren, b);
  return BrokerSet(b.num_vertices(), ren.map_to_new(b.members()));
}

BrokerSet renumber_to_old(const bsr::graph::Renumbering& ren, const BrokerSet& b) {
  check_sizes(ren, b);
  return BrokerSet(b.num_vertices(), ren.map_to_old(b.members()));
}

}  // namespace bsr::broker
