#!/usr/bin/env python3
"""Aggregate bsr-bench/1 suite files into one markdown trend table.

Every bench binary (bench/perf_*) writes a BENCH_<suite>.json in the shared
bsr-bench/1 schema (see bench/harness.hpp). CI uploads those as artifacts,
but eyeballing N separate JSON files across commits is hopeless — this script
folds them into a single markdown report: one summary row per suite (scale,
seed, threads, total deterministic work units) and one detail row per run
(wall ms, ms/rep, work units, and the run's largest counters). Committing or
uploading the report alongside the raw JSON gives a diffable trend line:
wall-ms columns move with hardware noise, work-unit columns only move when
the algorithms change.

Usage: bench_report.py [--out report.md] BENCH_a.json [BENCH_b.json ...]
Exits 1 if no input parses as bsr-bench/1 (so CI fails loudly when the
bench step silently produced nothing), 2 on usage errors.
"""

import argparse
import json
import sys

# Counters shown per run, capped so the table stays readable.
MAX_COUNTERS_PER_RUN = 3


def load_suite(path):
    """Returns the parsed suite dict, or None (with a stderr note) if the
    file is unreadable or not bsr-bench/1."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_report: skipping {path}: {err}", file=sys.stderr)
        return None
    if data.get("bench_schema") != "bsr-bench/1":
        print(f"bench_report: skipping {path}: bench_schema is "
              f"{data.get('bench_schema')!r}, expected 'bsr-bench/1'",
              file=sys.stderr)
        return None
    data["_path"] = path
    return data


def headline_counters(run):
    counters = sorted(run.get("counters", {}).items(),
                      key=lambda kv: (-kv[1], kv[0]))
    shown = ", ".join(f"{name}={value:,}"
                      for name, value in counters[:MAX_COUNTERS_PER_RUN])
    if len(counters) > MAX_COUNTERS_PER_RUN:
        shown += f", +{len(counters) - MAX_COUNTERS_PER_RUN} more"
    return shown or "—"


def render(suites):
    lines = ["# Bench trend report", ""]
    lines.append("| suite | scale | seed | threads | stats | runs | "
                 "total work units |")
    lines.append("|---|---:|---:|---:|---|---:|---:|")
    for s in suites:
        total = s.get("total_work_units",
                      sum(r.get("work_units", 0) for r in s.get("runs", [])))
        lines.append(
            f"| {s.get('suite', '?')} | {s.get('scale', '?')} "
            f"| {s.get('seed', '?')} | {s.get('threads', '?')} "
            f"| {'on' if s.get('stats_enabled') else 'off'} "
            f"| {len(s.get('runs', []))} | {total:,} |")
    for s in suites:
        lines.append("")
        lines.append(f"## {s.get('suite', '?')} ({s['_path']})")
        lines.append("")
        metrics = s.get("metrics", {})
        if metrics:
            shown = ", ".join(f"{k}={v:g}" for k, v in sorted(metrics.items()))
            lines.append(f"Suite metrics: {shown}")
            lines.append("")
        lines.append("| run | reps | wall ms | ms/rep | work units | "
                     "top counters |")
        lines.append("|---|---:|---:|---:|---:|---|")
        for r in s.get("runs", []):
            reps = r.get("repetitions", 1) or 1
            wall = r.get("wall_ms", 0.0)
            lines.append(
                f"| {r.get('name', '?')} | {reps} | {wall:.3f} "
                f"| {wall / reps:.3f} | {r.get('work_units', 0):,} "
                f"| {headline_counters(r)} |")
    lines.append("")
    lines.append("Work-unit columns are deterministic (seed + scale only); "
                 "wall-ms columns carry hardware noise. A work-unit change "
                 "without a matching code change is drift — see "
                 "scripts/check_obs_drift.py.")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report.py",
        description="Aggregate bsr-bench/1 JSON files into a markdown "
                    "trend table.")
    parser.add_argument("inputs", nargs="+", metavar="BENCH.json")
    parser.add_argument("--out", metavar="report.md",
                        help="write the report here instead of stdout")
    args = parser.parse_args()

    suites = [s for s in map(load_suite, args.inputs) if s is not None]
    if not suites:
        print("bench_report: no valid bsr-bench/1 inputs", file=sys.stderr)
        return 1
    suites.sort(key=lambda s: (s.get("suite", ""), s["_path"]))

    report = render(suites)
    if args.out:
        try:
            with open(args.out, "w") as f:
                f.write(report)
        except OSError as err:
            print(f"bench_report: cannot write {args.out}: {err}",
                  file=sys.stderr)
            return 1
        print(f"bench_report: wrote {args.out} "
              f"({len(suites)} suite(s), "
              f"{sum(len(s.get('runs', [])) for s in suites)} run(s))")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
