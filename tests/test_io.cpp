#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "io/csv.hpp"
#include "io/edge_list_io.hpp"
#include "io/env.hpp"
#include "io/table.hpp"
#include "test_util.hpp"

namespace bsr::io {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"A", "LongHeader"});
  t.row().cell("x").cell(std::int64_t{42});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RejectsEmptyHeaderAndBadArity) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(format_percent(0.8541), "85.41");
  EXPECT_EQ(format_percent(1.0), "100.00");
  EXPECT_EQ(format_percent(0.5313, 1), "53.1");
  EXPECT_EQ(format_double(3.14159, 3), "3.142");
}

TEST(Table, RowBuilderTypes) {
  Table t({"a", "b", "c", "d"});
  t.row().cell("s").cell(std::uint64_t{7}).cell(2.5, 1).percent(0.25);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, DocumentSerialization) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  w.add_row({"a,b", "c"});
  const std::string doc = w.to_string();
  EXPECT_EQ(doc, "x,y\n1,2\n\"a,b\",c\n");
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter w({"x"});
  EXPECT_THROW(w.add_row({"1", "2"}), std::invalid_argument);
}

TEST(EdgeList, RoundTrip) {
  const auto g = bsr::test::make_connected_random(30, 0.1, 5);
  std::ostringstream oss;
  write_edge_list(oss, g);
  std::istringstream iss(oss.str());
  const auto g2 = read_edge_list(iss);
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.edges(), g.edges());
}

TEST(EdgeList, SparseIdsCompactedInOrder) {
  std::istringstream iss("100 5\n7 100\n");
  const auto g = read_edge_list(iss);
  EXPECT_EQ(g.num_vertices(), 3u);  // ids 5, 7, 100 -> 0, 1, 2
  EXPECT_TRUE(g.has_edge(2, 0));    // 100-5
  EXPECT_TRUE(g.has_edge(1, 2));    // 7-100
}

TEST(EdgeList, CommentsAndBlanksSkipped) {
  std::istringstream iss("# header\n\n0 1 # trailing comment\n");
  const auto g = read_edge_list(iss);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeList, MalformedLinesThrow) {
  std::istringstream one_token("0\n");
  EXPECT_THROW(read_edge_list(one_token), std::runtime_error);
  std::istringstream three_tokens("0 1 2\n");
  EXPECT_THROW(read_edge_list(three_tokens), std::runtime_error);
}

TEST(EdgeList, CrlfLineEndingsParse) {
  // Windows-edited datasets: every line terminated \r\n, including comments.
  std::istringstream iss("# header\r\n0 1\r\n1 2\r\n");
  const auto g = read_edge_list(iss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(EdgeList, CrlfRoundTrip) {
  const auto g = bsr::test::make_connected_random(20, 0.15, 6);
  std::ostringstream oss;
  write_edge_list(oss, g);
  // Re-terminate every line with \r\n, as a DOS-mode transfer would.
  std::string crlf;
  for (const char c : oss.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream iss(crlf);
  const auto g2 = read_edge_list(iss);
  EXPECT_EQ(g2.edges(), g.edges());
}

TEST(EdgeList, OverflowingIdThrowsWithLineContext) {
  // 2^64 = 18446744073709551616 does not fit in uint64_t.
  std::istringstream iss("0 1\n18446744073709551616 2\n");
  try {
    (void)read_edge_list(iss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("overflows"), std::string::npos) << msg;
  }
}

TEST(EdgeList, NegativeIdThrowsWithLineContext) {
  std::istringstream iss("0 1\n1 2\n-3 4\n");
  try {
    (void)read_edge_list(iss);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
  }
}

TEST(EdgeList, NonNumericIdThrows) {
  std::istringstream iss("0 x1\n");
  EXPECT_THROW(read_edge_list(iss), std::runtime_error);
  std::istringstream partial("0 1z\n");  // trailing junk glued to the id
  EXPECT_THROW(read_edge_list(partial), std::runtime_error);
}

TEST(EdgeList, MaxUint64IdAccepted) {
  // The largest representable raw id still maps to a dense NodeId.
  std::istringstream iss("18446744073709551615 0\n");
  const auto g = read_edge_list(iss);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/x.txt"), std::runtime_error);
}

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~EnvGuard() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Env, Defaults) {
  unsetenv("REPRO_SCALE");
  unsetenv("REPRO_SOURCES");
  unsetenv("REPRO_SEED");
  const auto env = experiment_env();
  EXPECT_DOUBLE_EQ(env.scale, 1.0);
  EXPECT_EQ(env.bfs_sources, 512u);
}

TEST(Env, ParsesOverrides) {
  EnvGuard scale("REPRO_SCALE", "0.25");
  EnvGuard sources("REPRO_SOURCES", "64");
  EnvGuard seed("REPRO_SEED", "7");
  const auto env = experiment_env();
  EXPECT_DOUBLE_EQ(env.scale, 0.25);
  EXPECT_EQ(env.bfs_sources, 64u);
  EXPECT_EQ(env.seed, 7u);
}

TEST(Env, RejectsGarbage) {
  EnvGuard scale("REPRO_SCALE", "banana");
  EXPECT_THROW(experiment_env(), std::runtime_error);
}

TEST(Env, RejectsOutOfRangeScale) {
  EnvGuard scale("REPRO_SCALE", "99");
  EXPECT_THROW(experiment_env(), std::runtime_error);
}

TEST(Env, ScaledCountsKeepMinimum) {
  ExperimentEnv env;
  env.scale = 0.001;
  EXPECT_EQ(env.scaled(100, 5), 5u);
  env.scale = 0.5;
  EXPECT_EQ(env.scaled(100, 5), 50u);
}

}  // namespace
}  // namespace bsr::io
