// Type-erased edge admission predicate.
//
// This is the *legacy* dynamic-dispatch filter type: one indirect call per
// edge relaxation. New code should prefer the inlinable filter structs in
// graph/engine.hpp (DominatedEdgeFilter, FaultAwareFilter, ...) which the
// template-dispatched kernels fold into the traversal loop; EdgeFilter
// remains the public API for callers whose predicate is genuinely dynamic.
#pragma once

#include <functional>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

/// Optional edge admission predicate; nullptr-like (empty) means all edges.
using EdgeFilter = std::function<bool(NodeId, NodeId)>;

}  // namespace bsr::graph
