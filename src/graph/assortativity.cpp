#include "graph/assortativity.hpp"

#include <cmath>

namespace bsr::graph {

double degree_assortativity(const CsrGraph& g) {
  // Newman (2002): Pearson correlation over edges of the *remaining*
  // degrees (degree - 1) of the two endpoints; each undirected edge
  // contributes both orientations, which symmetrizes the sums.
  if (g.num_edges() < 2) return 0.0;

  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  std::uint64_t m2 = 0;  // number of ordered endpoint pairs = 2|E|
  for (NodeId u = 0; u < g.num_vertices(); ++u) {
    const double du = g.degree(u);
    for (const NodeId v : g.neighbors(u)) {
      const double dv = g.degree(v);
      sum_xy += du * dv;
      sum_x += du;
      sum_x2 += du * du;
      ++m2;
    }
  }
  const double inv = 1.0 / static_cast<double>(m2);
  const double mean = sum_x * inv;
  const double numerator = sum_xy * inv - mean * mean;
  const double denominator = sum_x2 * inv - mean * mean;
  if (std::abs(denominator) < 1e-15) return 0.0;
  return numerator / denominator;
}

}  // namespace bsr::graph
