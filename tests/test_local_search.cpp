#include "broker/local_search.hpp"

#include <gtest/gtest.h>

#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "test_util.hpp"

namespace bsr::broker {
namespace {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::test::make_connected_random;
using bsr::test::make_star;

TEST(LocalSearch, NeverDegrades) {
  const CsrGraph g = make_connected_random(80, 0.06, 1);
  const auto initial = maxsg(g, 10).brokers;
  const auto result = improve_by_swaps(g, initial);
  EXPECT_GE(result.final_connectivity, result.initial_connectivity - 1e-12);
  EXPECT_EQ(result.brokers.size(), initial.size());
}

TEST(LocalSearch, FixesObviouslyBadSeed) {
  // Star: the optimal single broker is the center; seed with a leaf.
  const CsrGraph g = make_star(20);
  BrokerSet bad(20);
  bad.add(7);
  const auto result = improve_by_swaps(g, bad);
  EXPECT_EQ(result.swaps_applied, 1u);
  EXPECT_TRUE(result.brokers.contains(0));
  EXPECT_DOUBLE_EQ(result.final_connectivity, 1.0);
}

TEST(LocalSearch, MaxSgIsNearLocallyOptimal) {
  // The interesting finding: greedy MaxSG output should admit few or no
  // improving 1-swaps.
  const CsrGraph g = make_connected_random(120, 0.05, 3);
  const auto initial = maxsg(g, 15).brokers;
  const auto result = improve_by_swaps(g, initial);
  EXPECT_LE(result.final_connectivity - result.initial_connectivity, 0.05);
}

TEST(LocalSearch, RespectsSwapBudget) {
  const CsrGraph g = make_connected_random(60, 0.07, 5);
  // Deliberately bad seed: the last 8 vertices by id.
  BrokerSet bad(g.num_vertices());
  for (NodeId v = g.num_vertices() - 8; v < g.num_vertices(); ++v) bad.add(v);
  LocalSearchOptions options;
  options.max_swaps = 2;
  const auto result = improve_by_swaps(g, bad, options);
  EXPECT_LE(result.swaps_applied, 2u);
}

TEST(LocalSearch, DegenerateInputs) {
  const CsrGraph g = make_star(5);
  const auto empty = improve_by_swaps(g, BrokerSet(5));
  EXPECT_EQ(empty.swaps_applied, 0u);
  BrokerSet all(5);
  for (NodeId v = 0; v < 5; ++v) all.add(v);
  const auto full = improve_by_swaps(g, all);
  EXPECT_EQ(full.swaps_applied, 0u);
  EXPECT_DOUBLE_EQ(full.final_connectivity, 1.0);
}

}  // namespace
}  // namespace bsr::broker
