#include "broker/mcbg_approx.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "broker/coverage.hpp"
#include "broker/greedy_mcb.hpp"
#include "graph/bfs.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::kUnreachable;
using bsr::graph::NodeId;

std::uint32_t mcbg_preselect_budget(std::uint32_t k, std::uint32_t beta) {
  if (beta == 0) throw std::invalid_argument("mcbg_preselect_budget: beta = 0");
  const std::uint32_t per_broker_cost = (beta + 1) / 2;  // ⌈β/2⌉ - 1 extra + itself
  // x + (x-1)(c-1) <= k with c = ⌈β/2⌉  ⇒  x <= (k + c - 1) / c.
  const std::uint32_t c = per_broker_cost;
  if (c <= 1) return k;
  return std::max<std::uint32_t>(1, (k + c - 1) / c);
}

namespace {

/// BFS tree from `root`; returns parents (kUnreachable where not reached).
std::vector<NodeId> bfs_parents(const CsrGraph& g, NodeId root) {
  std::vector<NodeId> parent(g.num_vertices(), kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(g.num_vertices());
  parent[root] = root;
  queue.push_back(root);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId v : g.neighbors(u)) {
      if (parent[v] == kUnreachable) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return parent;
}

struct StitchPlan {
  std::vector<NodeId> added;  // B″ for this root
  std::uint32_t unreachable = 0;
};

/// For one candidate root, walk every other pre-selected broker's shortest
/// path to the root and promote alternate interior nodes so each hop is
/// dominated by B' ∪ B″.
StitchPlan stitch_for_root(const CsrGraph& g, const BrokerSet& preselected,
                           NodeId root, const std::vector<NodeId>& parent) {
  BSR_COUNT(McbgStitchRounds);
  StitchPlan plan;
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const NodeId b : preselected.members()) in_set[b] = true;

  std::vector<NodeId> path;
  for (const NodeId v : preselected.members()) {
    if (v == root) continue;
    if (parent[v] == kUnreachable) {
      ++plan.unreachable;
      continue;
    }
    path.clear();
    for (NodeId w = v; w != root; w = parent[w]) path.push_back(w);
    path.push_back(root);
    // Walk hops v..root; when neither endpoint of hop (path[i], path[i+1])
    // is in the set, promote the far endpoint — it also dominates the next
    // hop, which is what bounds the cost by ⌈len/2⌉ - 1.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!in_set[path[i]] && !in_set[path[i + 1]]) {
        in_set[path[i + 1]] = true;
        plan.added.push_back(path[i + 1]);
      }
    }
  }
  BSR_COUNT_N(McbgStitchPromotions, plan.added.size());
  return plan;
}

/// Best stitching plan (over candidate roots) for a pre-selection prefix.
StitchPlan best_stitch(const CsrGraph& g, const BrokerSet& preselected,
                       std::uint32_t max_roots) {
  const std::uint32_t roots_to_try =
      max_roots == 0 ? static_cast<std::uint32_t>(preselected.size())
                     : std::min<std::uint32_t>(
                           max_roots, static_cast<std::uint32_t>(preselected.size()));
  StitchPlan best;
  bool have_best = false;
  for (std::uint32_t i = 0; i < roots_to_try; ++i) {
    const NodeId root = preselected.members()[i];
    const auto parent = bfs_parents(g, root);
    StitchPlan plan = stitch_for_root(g, preselected, root, parent);
    if (!have_best || plan.added.size() < best.added.size()) {
      best = std::move(plan);
      have_best = true;
      if (best.added.empty()) break;  // cannot do better
    }
  }
  return best;
}

}  // namespace

McbgResult mcbg_approx(const CsrGraph& g, std::uint32_t k, const McbgOptions& options) {
  BSR_SPAN("broker.mcbg");
  if (g.num_vertices() == 0) throw std::invalid_argument("mcbg_approx: empty graph");
  if (options.beta == 0) throw std::invalid_argument("mcbg_approx: beta = 0");

  McbgResult result;
  result.brokers = BrokerSet(g.num_vertices());
  if (k == 0) return result;

  const std::uint32_t x_star = mcbg_preselect_budget(k, options.beta);
  const std::uint32_t x_max = options.use_full_budget ? k : x_star;

  // One greedy run at the largest pre-selection; smaller pre-selections are
  // its prefixes (the greedy sequence does not depend on the budget).
  const GreedyMcbResult greedy = greedy_mcb(g, x_max);
  const auto greedy_size = static_cast<std::uint32_t>(greedy.brokers.size());

  const auto assemble = [&](const BrokerSet& preselected,
                            StitchPlan plan) -> McbgResult {
    McbgResult out;
    BrokerSet combined = preselected;
    for (const NodeId v : plan.added) combined.add(v);
    out.preselected = static_cast<std::uint32_t>(preselected.size());
    out.stitching = static_cast<std::uint32_t>(plan.added.size());
    out.unreachable_preselected = plan.unreachable;
    out.brokers = std::move(combined);
    out.coverage = coverage(g, out.brokers);
    return out;
  };

  const auto try_x =
      [&](std::uint32_t x) -> std::optional<std::pair<BrokerSet, StitchPlan>> {
    const BrokerSet preselected = greedy.brokers.prefix(std::min(x, greedy_size));
    if (preselected.size() <= 1) return std::make_pair(preselected, StitchPlan{});
    StitchPlan plan = best_stitch(g, preselected, options.max_roots);
    if (preselected.size() + plan.added.size() > k) return std::nullopt;
    return std::make_pair(preselected, std::move(plan));
  };

  // Largest feasible pre-selection: stitching cost grows with x, so a
  // binary search over [1, x_max] finds the boundary with O(log k) stitch
  // evaluations. (Monotonicity is heuristic; the budget check in try_x
  // keeps the result valid regardless.)
  if (auto full = try_x(std::min(x_max, greedy_size))) {
    result = assemble(full->first, std::move(full->second));
    return result;
  }
  std::uint32_t lo = 1, hi = std::min(x_max, greedy_size);
  std::optional<std::pair<BrokerSet, StitchPlan>> best;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo + 1) / 2;
    if (auto attempt = try_x(mid)) {
      best = std::move(attempt);
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  if (!best) best = try_x(lo);
  if (best) result = assemble(best->first, std::move(best->second));
  return result;
}

}  // namespace bsr::broker
