#include "graph/betweenness.hpp"

#include <algorithm>
#include <numeric>

#include "graph/sampling.hpp"
#include "graph/workspace.hpp"

namespace bsr::graph {

namespace {

/// One Brandes pivot: accumulates pair dependencies of `source` into
/// `score`. The workspace's epoch stamps replace the three O(V) clears the
/// previous implementation paid per pivot: sigma/delta entries are
/// (re)initialized lazily at discovery, so a pivot touches only the
/// vertices it actually reaches.
struct BrandesScratch {
  engine::Workspace ws;
  std::vector<double> sigma;  // # shortest paths from source
  std::vector<double> delta;  // dependency accumulator

  explicit BrandesScratch(NodeId n) : ws(n), sigma(n), delta(n) {}
};

void brandes_pivot(const CsrGraph& g, NodeId source, BrandesScratch& scratch,
                   std::vector<double>& score) {
  auto& ws = scratch.ws;
  auto& sigma = scratch.sigma;
  auto& delta = scratch.delta;

  ws.begin(g.num_vertices());
  ws.discover(source, 0);
  sigma[source] = 1.0;
  delta[source] = 0.0;
  for (std::size_t head = 0; head < ws.frontier_size(); ++head) {
    const NodeId u = ws.frontier_at(head);
    const std::uint32_t du = ws.dist_unchecked(u);
    for (const NodeId v : g.neighbors(u)) {
      if (!ws.visited(v)) {
        ws.discover(v, du + 1);
        sigma[v] = 0.0;
        delta[v] = 0.0;
      }
      if (ws.dist_unchecked(v) == du + 1) sigma[v] += sigma[u];
    }
  }
  // Reverse visit order: accumulate dependencies.
  const auto order = ws.visit_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    const std::uint32_t dw = ws.dist_unchecked(w);
    for (const NodeId v : g.neighbors(w)) {
      if (ws.visited(v) && ws.dist_unchecked(v) + 1 == dw) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
    }
    if (w != source) score[w] += delta[w];
  }
}

}  // namespace

std::vector<double> betweenness(const CsrGraph& g, Rng& rng,
                                std::size_t num_sources) {
  const NodeId n = g.num_vertices();
  std::vector<double> score(n, 0.0);
  if (n < 3) return score;

  std::vector<NodeId> sources;
  if (num_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), NodeId{0});
  } else {
    sources = sample_distinct(rng, n, static_cast<NodeId>(num_sources));
  }

  BrandesScratch scratch(n);
  for (const NodeId s : sources) brandes_pivot(g, s, scratch, score);

  // Scale to full-pivot expectation; halve because each undirected pair is
  // counted from both endpoints under full pivoting.
  const double scale =
      static_cast<double>(n) / static_cast<double>(sources.size()) / 2.0;
  for (double& value : score) value *= scale;
  return score;
}

std::vector<double> betweenness_exact(const CsrGraph& g) {
  Rng unused(0);
  return betweenness(g, unused, g.num_vertices());
}

std::vector<NodeId> vertices_by_betweenness_desc(const CsrGraph& g, Rng& rng,
                                                 std::size_t num_sources) {
  const auto score = betweenness(g, rng, num_sources);
  std::vector<NodeId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&score](NodeId a, NodeId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  return order;
}

}  // namespace bsr::graph
