// brokerctl — command-line front end for the broker-set toolkit.
//
// A downstream operator's entry point: generate or load a topology, select
// a broker set with any algorithm, evaluate it, and export artifacts —
// without writing C++.
//
//   brokerctl gen <out.topo> [scale]          generate a calibrated topology
//   brokerctl select <in.topo> <algo> <k>     maxsg|mcbg|greedy|db|prb|weighted
//   brokerctl eval <in.topo> <algo> <k>       selection + full evaluation
//   brokerctl export-dot <in.topo> <out.dot> [k]   sampled DOT (brokers marked)
//   brokerctl stats <in.topo>                 dataset summary (Table-2 style)
//   brokerctl stats [--stats-out=<file>] <subcommand> [args...]
//                                             run any subcommand with the
//                                             telemetry plane on: counter
//                                             table to stderr, JSON snapshot
//                                             to --stats-out
//   brokerctl faults <in.topo> <algo> <k> [frac]   correlated IXP-outage sweep
//   brokerctl health <in.topo> <algo> <k> [probe-interval]   health-plane sim
//   brokerctl serve <in.topo> <k> [--queries <n>] [--churn <events>]
//                   [--slo <spec>] [--slo-out <f>] [--qtrace-out <f>]
//                   [--episodes-out <f>]
//                                             route-serving plane: epochal
//                                             landmark oracle over a MaxSG
//                                             set, driven through a broker
//                                             churn schedule with degraded-
//                                             mode serving and budgeted
//                                             rebuilds. --slo attaches the
//                                             burn-rate monitor to every
//                                             round (exit 1 on breach,
//                                             verdict JSON to --slo-out);
//                                             --qtrace-out captures per-query
//                                             trace rows as bsr-qtrace/1
//                                             JSONL; --episodes-out emits the
//                                             live episode report (requires
//                                             `brokerctl record`)
//   brokerctl slo [--spec=<spec>] [--out=<f>] <events.jsonl>
//                                             offline SLO evaluator: replay a
//                                             recorded journal's batch events
//                                             through the burn-rate monitor;
//                                             byte-identical verdict to the
//                                             live `serve --slo` run, exit 1
//                                             on breach
//   brokerctl episodes [--qtrace=<f>] [--out=<f>] [--trace-out=<f>]
//                      [--top=<n>] <events.jsonl>
//                                             causal episode reconstruction:
//                                             stitch a recorded journal into
//                                             per-fault lifecycle episodes
//                                             with critical-path phase
//                                             decomposition (bsr-episodes/1
//                                             JSONL to --out, Perfetto flow
//                                             trace to --trace-out);
//                                             byte-identical to the live
//                                             `serve --episodes-out` report,
//                                             exit 1 on malformed lifecycles
//                                             in a drop-free journal
//   brokerctl robust [--groups] <in.topo> <k> [r]   r-redundant selection vs
//                                             plain greedy: worst-case
//                                             surviving connectivity after any
//                                             r broker failures (or, with
//                                             --groups, any single IXP outage)
//   brokerctl record [--events-out=<f>] [--series-out=<f>] [--trace-out=<f>]
//                    [--interval=<dt>] <subcommand> [args...]
//                                             run any subcommand with the
//                                             flight recorder on: event
//                                             journal (bsr-events/1 JSONL),
//                                             per-round counter CSV, Chrome
//                                             trace for Perfetto
//   brokerctl report <events.jsonl> [--window=<w>]   summarize a journal:
//                                             event counts, worst misrouting
//                                             window, quarantine dwells
//   brokerctl topo [--scale <s>]              generate the calibrated topology
//                                             at scale s and print size,
//                                             degree, and locality metrics
//                                             (avg neighbor-id gap before and
//                                             after degree renumbering)
//
// Exit codes: 0 success, 1 runtime failure (bad file, bad argument value,
// unwritable output path), 2 usage error (unknown subcommand, missing
// operands).
#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/journal.hpp"
#include "obs/qtrace.hpp"
#include "obs/slo.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"

#include "broker/baselines.hpp"
#include "broker/coverage.hpp"
#include "broker/disjoint.hpp"
#include "broker/dominated.hpp"
#include "broker/greedy_mcb.hpp"
#include "broker/maxsg.hpp"
#include "broker/mcbg_approx.hpp"
#include "broker/resilience.hpp"
#include "broker/robust.hpp"
#include "broker/weighted.hpp"
#include "graph/degree_stats.hpp"
#include "graph/fault_plane.hpp"
#include "graph/renumbering.hpp"
#include "graph/sampling.hpp"
#include "io/dot_export.hpp"
#include "io/env.hpp"
#include "io/table.hpp"
#include "sim/churn.hpp"
#include "sim/demand.hpp"
#include "sim/route_service.hpp"
#include "sim/router.hpp"
#include "topology/caida_import.hpp"
#include "topology/renumber.hpp"
#include "topology/serialization.hpp"
#include "topology/stats.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::sim::RouteAnswer;
using bsr::sim::RouteService;
using bsr::topology::InternetTopology;

int usage() {
  std::cerr
      << "usage:\n"
         "  brokerctl gen <out.topo> [scale]\n"
         "  brokerctl import-caida <as-rel.txt> <out.topo> [ixp-members.txt]\n"
         "  brokerctl select <in.topo> <maxsg|mcbg|greedy|db|prb|weighted> <k>\n"
         "  brokerctl eval <in.topo> <algo> <k>\n"
         "  brokerctl export-dot <in.topo> <out.dot> [k]\n"
         "  brokerctl stats <in.topo>\n"
         "  brokerctl stats [--stats-out=<file>] <subcommand> [args...]\n"
         "  brokerctl faults <in.topo> <algo> <k> [max-failed-ixp-frac]\n"
         "  brokerctl health <in.topo> <algo> <k> [probe-interval]\n"
         "  brokerctl serve <in.topo> <k> [--queries <n>] [--churn <events>]\n"
         "                  [--slo <spec>] [--slo-out <f>] [--qtrace-out <f>]\n"
         "                  [--episodes-out <f>]\n"
         "  brokerctl slo [--spec=<spec>] [--out=<f>] <events.jsonl>\n"
         "  brokerctl episodes [--qtrace=<f>] [--out=<f>] [--trace-out=<f>]\n"
         "                     [--top=<n>] <events.jsonl>\n"
         "  brokerctl robust [--groups] <in.topo> <k> [r]\n"
         "  brokerctl record [--events-out=<f>] [--series-out=<f>]\n"
         "                   [--trace-out=<f>] [--interval=<dt>] <subcommand> "
         "[args...]\n"
         "  brokerctl report <events.jsonl> [--window=<w>]\n"
         "  brokerctl topo [--scale <s>]\n";
  return 2;
}

int dispatch(int argc, char** argv);

/// Parses a positive integer operand; throws with the operand's name and the
/// offending text (stoul alone would accept "12abc" and wrap "-5").
std::uint32_t parse_u32(const std::string& what, const std::string& text) {
  std::size_t pos = 0;
  long long value = 0;
  try {
    value = std::stoll(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || value <= 0 ||
      value > static_cast<long long>(std::numeric_limits<std::uint32_t>::max())) {
    throw std::runtime_error(what + " must be a positive integer, got '" + text +
                             "'");
  }
  return static_cast<std::uint32_t>(value);
}

/// Parses a floating-point operand in (lo, hi]; same diagnostics contract.
double parse_positive_double(const std::string& what, const std::string& text,
                             double hi) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || !(value > 0.0) || value > hi) {
    throw std::runtime_error(what + " must be a number in (0, " +
                             bsr::io::format_double(hi, 1) + "], got '" + text +
                             "'");
  }
  return value;
}

BrokerSet run_algorithm(const InternetTopology& topo, const std::string& algo,
                        std::uint32_t k, std::uint64_t seed) {
  const auto& g = topo.graph;
  if (algo == "maxsg") return bsr::broker::maxsg(g, k).brokers;
  if (algo == "mcbg") {
    bsr::broker::McbgOptions options;
    options.max_roots = 16;
    return bsr::broker::mcbg_approx(g, k, options).brokers;
  }
  if (algo == "greedy") return bsr::broker::greedy_mcb(g, k).brokers;
  if (algo == "db") return bsr::broker::db_top_degree(g, k);
  if (algo == "prb") return bsr::broker::prb_top_pagerank(g, k);
  if (algo == "weighted") {
    // Gravity traffic weights, as in ablation_weighted.
    bsr::graph::Rng rng(seed);
    std::vector<double> weight(g.num_vertices());
    for (bsr::graph::NodeId v = 0; v < g.num_vertices(); ++v) {
      weight[v] = topo.is_ixp(v) ? 0.0 : rng.pareto(1.1, 1.0, 5000.0);
    }
    return bsr::broker::weighted_greedy_mcb(g, k, weight).brokers;
  }
  throw std::runtime_error("unknown algorithm '" + algo +
                           "' (valid: maxsg mcbg greedy db prb weighted)");
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto env = bsr::io::experiment_env();
  const double scale = argc > 3 ? parse_positive_double("scale", argv[3], 10.0)
                                : std::min(env.scale, 0.05);
  auto config = bsr::topology::InternetConfig{}.scaled(scale);
  config.seed = env.seed;
  const auto topo = bsr::topology::make_internet(config);
  bsr::topology::save_topology_file(argv[2], topo);
  std::cout << "wrote " << argv[2] << ": " << topo.num_ases << " ASes + "
            << topo.num_ixps << " IXPs, " << topo.graph.num_edges() << " edges\n";
  return 0;
}

int cmd_import_caida(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string ixp_path = argc > 4 ? argv[4] : "";
  const auto topo = bsr::topology::import_caida_files(argv[2], ixp_path);
  bsr::topology::save_topology_file(argv[3], topo);
  std::cout << "imported " << topo.num_ases << " ASes + " << topo.num_ixps
            << " IXPs, " << topo.graph.num_edges() << " edges -> " << argv[3]
            << '\n';
  return 0;
}

int cmd_select(int argc, char** argv, bool full_eval) {
  if (argc < 5) return usage();
  const auto env = bsr::io::experiment_env();
  const auto topo = bsr::topology::load_topology_file(argv[2]);
  const auto k = parse_u32("k", argv[4]);
  const BrokerSet brokers = run_algorithm(topo, argv[3], k, env.seed);

  bsr::io::Table table({"metric", "value"});
  table.row().cell("brokers").cell(static_cast<std::uint64_t>(brokers.size()));
  table.row()
      .cell("coverage f(B)")
      .cell(std::uint64_t{bsr::broker::coverage(topo.graph, brokers)});
  table.row()
      .cell("saturated connectivity")
      .percent(bsr::broker::saturated_connectivity(topo.graph, brokers));
  if (full_eval) {
    bsr::graph::Rng rng(env.seed + 1);
    const auto cdf = bsr::broker::dominated_distance_cdf(
        topo.graph, brokers, rng,
        std::min<std::size_t>(env.bfs_sources, topo.graph.num_vertices()));
    table.row().cell("4-hop connectivity").percent(cdf.at(4));
    bsr::graph::Rng rng2(env.seed + 2);
    const auto diversity =
        bsr::broker::path_diversity(topo.graph, brokers, rng2, 500);
    table.row().cell("pairs with backup dominating path").percent(diversity.with_two);
    const auto share =
        bsr::broker::broker_only_share(topo.graph, brokers, rng2, 2000);
    table.row().cell("broker-only connections").percent(share.broker_only);
  }
  table.print(std::cout);
  // Selection order on stdout-adjacent channel: first 20 members.
  std::cout << "first members:";
  for (std::size_t i = 0; i < std::min<std::size_t>(20, brokers.size()); ++i) {
    std::cout << ' ' << brokers.members()[i];
  }
  std::cout << (brokers.size() > 20 ? " ...\n" : "\n");
  return 0;
}

int cmd_export_dot(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto env = bsr::io::experiment_env();
  const auto topo = bsr::topology::load_topology_file(argv[2]);
  BrokerSet brokers(topo.num_vertices());
  if (argc > 4) {
    brokers = bsr::broker::maxsg(topo.graph, parse_u32("k", argv[4])).brokers;
  }
  std::ofstream out(argv[3], std::ios::trunc);
  if (!out) {
    std::cerr << "cannot open " << argv[3] << '\n';
    return 1;
  }
  bsr::graph::Rng rng(env.seed);
  const auto exported = bsr::io::write_dot_sample(
      out, topo, brokers.empty() ? nullptr : &brokers, 150, 600, rng);
  std::cout << "wrote " << exported << "-vertex sample to " << argv[3]
            << " (render: sfdp -Tsvg " << argv[3] << " -o out.svg)\n";
  return 0;
}

// Correlated IXP-outage sweep: fail growing fractions of the IXPs (every
// membership edge of a failed IXP drops at once), report the degradation
// tier mix under a bounded heal budget, and the connectivity recovered by
// greedy repair on the damaged graph.
int cmd_faults(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto env = bsr::io::experiment_env();
  const auto topo = bsr::topology::load_topology_file(argv[2]);
  const auto& g = topo.graph;
  const auto k = parse_u32("k", argv[4]);
  const double max_frac =
      argc > 5 ? parse_positive_double("max-failed-ixp-frac", argv[5], 1.0) : 0.5;
  const BrokerSet brokers = run_algorithm(topo, argv[3], k, env.seed);

  if (topo.num_ixps == 0) {
    std::cerr << "brokerctl faults: topology has no IXPs to fail\n";
    return 1;
  }
  std::vector<bsr::graph::FailureGroup> groups;
  groups.reserve(topo.num_ixps);
  for (bsr::graph::NodeId v = topo.num_ases; v < topo.num_vertices(); ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }
  bsr::graph::Rng rng(env.seed + 50);
  std::vector<bsr::graph::NodeId> order(groups.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<bsr::graph::NodeId>(i);
  }
  bsr::graph::shuffle(rng, order);

  const std::uint32_t repair_budget = std::max<std::uint32_t>(k / 20, 2);
  const bsr::sim::DegradationPolicy policy;
  bsr::graph::FaultPlane plane(g);
  bsr::sim::Router router(g, brokers, &plane);

  std::cout << "broker set: " << brokers.size() << " members; heal budget "
            << policy.heal_attempts << " links/route; repair budget "
            << repair_budget << " brokers\n";
  bsr::io::Table table({"failed IXPs", "failed edges", "connectivity",
                        "dominated", "degraded", "fallback", "unreachable",
                        "repaired"});
  std::size_t failed = 0;
  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto target = std::min(
        static_cast<std::size_t>(frac * max_frac * static_cast<double>(groups.size())),
        groups.size());
    while (failed < target) plane.fail_group(groups[order[failed++]]);

    const double damaged = bsr::broker::saturated_connectivity(g, brokers, plane);
    const auto repaired_set =
        bsr::broker::repair_brokers(g, brokers, repair_budget, plane);
    const double repaired =
        bsr::broker::saturated_connectivity(g, repaired_set, plane);
    bsr::graph::Rng pair_rng(env.seed + 51);
    const auto shares = bsr::sim::sample_tier_shares(
        router, pair_rng, std::max<std::size_t>(env.bfs_sources, 200), policy);

    table.row()
        .cell(std::to_string(failed))
        .cell(plane.num_failed_edges())
        .percent(damaged)
        .percent(shares.fraction(shares.dominated))
        .percent(shares.fraction(shares.degraded))
        .percent(shares.fraction(shares.free_fallback))
        .percent(shares.fraction(shares.unreachable))
        .percent(repaired);
  }
  table.print(std::cout);
  return 0;
}

/// Human-readable verdict block shared by the live (`serve --slo`) and
/// offline (`slo`) evaluators — same report type, same rendering.
void print_slo_summary(const bsr::obs::SloReport& report) {
  std::cout << "slo: " << report.samples << " samples, " << report.breaches
            << " breach episode(s), " << report.recovers << " recovered"
            << (report.in_breach ? ", STILL IN BREACH" : "") << "\n";
  for (const auto& obj : report.objectives) {
    if (!obj.enabled) continue;
    std::cout << "  " << obj.name << ": worst burn "
              << bsr::io::format_double(obj.worst_short_burn, 2)
              << " (short) / "
              << bsr::io::format_double(obj.worst_long_burn, 2) << " (long)"
              << (obj.first_breach_time >= 0.0
                      ? ", first breach at t=" +
                            bsr::io::format_double(obj.first_breach_time, 2)
                      : "")
              << "\n";
  }
}

// Route-serving plane: a long-lived RouteService (epochal landmark oracle)
// over a MaxSG broker set, driven end to end through a deterministic broker
// churn schedule — fail the top brokers one per round, heal them later —
// while gravity-demand query batches are served at every round. Shows the
// degradation tiers (fresh/stale/shedded/refused), the rebuild pipeline
// (starts, crashes, discards) and the deterministic answer digest.
int cmd_serve(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto env = bsr::io::experiment_env();
  const auto topo = bsr::topology::load_topology_file(argv[2]);
  const auto k = parse_u32("k", argv[3]);
  std::uint32_t queries = 100'000;
  std::uint32_t churn_events = 8;
  std::string slo_spec, slo_out, qtrace_out, episodes_out;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--queries" && i + 1 < argc) {
      queries = parse_u32("queries", argv[++i]);
    } else if (arg == "--churn" && i + 1 < argc) {
      churn_events = parse_u32("churn", argv[++i]);
    } else if (arg == "--slo" && i + 1 < argc) {
      slo_spec = argv[++i];
    } else if (arg == "--slo-out" && i + 1 < argc) {
      slo_out = argv[++i];
    } else if (arg == "--qtrace-out" && i + 1 < argc) {
      qtrace_out = argv[++i];
    } else if (arg == "--episodes-out" && i + 1 < argc) {
      episodes_out = argv[++i];
    } else {
      std::cerr << "serve: unknown option '" << arg << "'\n";
      return usage();
    }
  }
  if (!slo_out.empty() && slo_spec.empty()) {
    std::cerr << "serve: --slo-out needs --slo <spec>\n";
    return usage();
  }
  // Every output opens before the (potentially long) run so an unwritable
  // path fails fast — the same contract as `brokerctl record`.
  std::ofstream slo_file, qtrace_file, episodes_file;
  const auto open_out = [](std::ofstream& f, const std::string& path) {
    if (path.empty()) return true;
    f.open(path, std::ios::trunc);
    if (!f) {
      std::cerr << "serve: cannot open " << path << '\n';
      return false;
    }
    return true;
  };
  if (!open_out(slo_file, slo_out) || !open_out(qtrace_file, qtrace_out) ||
      !open_out(episodes_file, episodes_out)) {
    return 1;
  }
  // The monitor itself is plain arithmetic and works in any build; the
  // per-query tracer only records from instrumented serve paths.
  const bool want_qtrace = !qtrace_out.empty() || !episodes_out.empty();
  if (want_qtrace && !BSR_STATS_ENABLED) {
    std::cerr << "serve: built with BSR_STATS=OFF — the query trace will be "
                 "empty\n";
  }
  // Live episode reconstruction reads the flight recorder; without the
  // `record` wrapper the journal holds nothing and the report is empty.
  if (!episodes_out.empty() && !bsr::obs::recording_enabled()) {
    std::cerr << "serve: --episodes-out without `brokerctl record` — the "
                 "journal is empty, so the episode report will be too\n";
  }
  std::optional<bsr::obs::SloMonitor> monitor;
  if (!slo_spec.empty()) {
    monitor.emplace(bsr::obs::parse_slo_spec(slo_spec));
  }
  if (want_qtrace) bsr::obs::start_query_trace();

  const BrokerSet brokers = run_algorithm(topo, "maxsg", k, env.seed);
  bsr::graph::FaultPlane faults(topo.graph);
  RouteService service(topo.graph, brokers, &faults);
  std::cout << "route service: epoch " << service.epoch_id() << ", "
            << service.landmarks().size() << " landmarks over "
            << service.usable_broker_count() << " usable brokers\n";

  // One fail per round for the first half of the schedule, then the heals in
  // the same order — every event hits a distinct top-degree broker.
  std::vector<bsr::graph::NodeId> hubs(brokers.members().begin(),
                                       brokers.members().end());
  std::sort(hubs.begin(), hubs.end(),
            [&](bsr::graph::NodeId a, bsr::graph::NodeId b) {
              const auto da = topo.graph.degree(a);
              const auto db = topo.graph.degree(b);
              return da != db ? da > db : a < b;
            });
  const std::uint32_t fails =
      std::min<std::uint32_t>(churn_events / 2 + churn_events % 2,
                              static_cast<std::uint32_t>(hubs.size()));

  bsr::sim::DemandConfig demand;
  const std::uint32_t rounds = churn_events + 2;
  demand.num_flows = std::max<std::uint32_t>(queries / rounds, 1);
  bsr::graph::Rng demand_rng(env.seed + 70);
  const auto flows = bsr::sim::generate_flows(topo.graph, demand, demand_rng);

  std::vector<RouteAnswer> answers;
  std::vector<RouteAnswer> all;
  // Live SLO input: each round's answer-tag tallies are the delta of the
  // service's cumulative stats, and the costs come from the last-batch
  // sketch summary — the exact values the journal's batch events carry, so
  // the offline `brokerctl slo` replay reaches the same verdict.
  bsr::sim::RouteServiceStats prev{};
  const auto observe_round = [&](double when) {
    if (!monitor.has_value()) return;
    const auto& s = service.stats();
    bsr::obs::SloSample sample;
    sample.time = when;
    sample.fresh = s.fresh - prev.fresh;
    sample.stale_served = s.stale_served - prev.stale_served;
    sample.shedded = s.shedded - prev.shedded;
    sample.refused = s.refused - prev.refused;
    sample.staleness = service.stale_events();
    sample.p99_ticks = s.last_batch_p99_ticks;
    sample.max_ticks = s.last_batch_max_ticks;
    prev = s;
    monitor->observe(sample);
  };
  double now = 0.0;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    now = static_cast<double>(round);
    service.advance(now);
    if (round >= 1 && round - 1 < churn_events) {
      const std::uint32_t e = round - 1;
      if (e < fails) {
        faults.fail_vertex(hubs[e]);
        service.on_fault(now);
      } else if (e - fails < fails) {
        faults.heal_vertex(hubs[e - fails]);
        service.on_heal(now);
      }
    }
    service.serve_batch(flows, now, answers);
    all.insert(all.end(), answers.begin(), answers.end());
    observe_round(now);
  }
  service.advance(now + 64.0);  // let the last rebuild land
  service.serve_batch(flows, now + 64.0, answers);
  all.insert(all.end(), answers.begin(), answers.end());
  observe_round(now + 64.0);

  const auto& stats = service.stats();
  std::cout << "served " << stats.queries << " routes over " << (rounds + 1)
            << " rounds (" << churn_events << " churn events)\n";
  bsr::io::Table table({"metric", "value"});
  table.row().cell("fresh answers").cell(stats.fresh);
  table.row().cell("stale served").cell(stats.stale_served);
  table.row().cell("shedded").cell(stats.shedded);
  table.row().cell("refused").cell(stats.refused);
  table.row().cell("staleness high-water").cell(stats.max_stale_served);
  table.row().cell("epochs published").cell(stats.epochs_published);
  table.row().cell("incremental patches").cell(stats.patches);
  table.row()
      .cell("rebuilds (crashed/discarded)")
      .cell(std::to_string(stats.rebuilds_started) + " (" +
            std::to_string(stats.rebuild_crashes) + "/" +
            std::to_string(stats.rebuilds_discarded) + ")");
  table.row().cell("final epoch").cell(service.epoch_id());
  table.row()
      .cell("degraded at exit")
      .cell(service.degraded() ? "yes" : "no");
  table.row().cell("answer digest").cell(bsr::sim::answer_digest(all));
  table.print(std::cout);

  int rc = 0;
  bsr::obs::QtraceSnapshot qtrace;
  if (want_qtrace) {
    bsr::obs::stop_query_trace();
    qtrace = bsr::obs::snapshot_query_trace();
  }
  if (!qtrace_out.empty()) {
    bsr::obs::write_qtrace_jsonl(qtrace_file, qtrace);
    qtrace_file.flush();
    if (!qtrace_file) {
      std::cerr << "serve: failed writing " << qtrace_out << '\n';
      rc = 1;
    } else {
      std::cerr << "serve: wrote " << qtrace.rows.size() << " trace rows ("
                << qtrace.dropped << " dropped) to " << qtrace_out << '\n';
    }
  }
  if (!episodes_out.empty()) {
    // Same reconstruction the offline `brokerctl episodes` replay runs over
    // the exported journal + qtrace files — byte-identical by construction.
    const bsr::obs::Journal journal = bsr::obs::snapshot_journal();
    const bsr::obs::EpisodeReport episodes =
        bsr::obs::episodes_from_journal(journal, &qtrace);
    bsr::obs::write_episodes_jsonl(episodes_file, episodes);
    episodes_file.flush();
    if (!episodes_file) {
      std::cerr << "serve: failed writing " << episodes_out << '\n';
      rc = 1;
    } else {
      std::cerr << "serve: wrote " << episodes.episodes.size()
                << " episode(s) to " << episodes_out << '\n';
    }
  }
  if (monitor.has_value()) {
    const bsr::obs::SloReport& report = monitor->report();
    print_slo_summary(report);
    if (!slo_out.empty()) {
      bsr::obs::write_slo_json(slo_file, report);
      slo_file.flush();
      if (!slo_file) {
        std::cerr << "serve: failed writing " << slo_out << '\n';
        rc = 1;
      } else {
        std::cerr << "serve: wrote " << slo_out << '\n';
      }
    }
    if (!report.ok()) {
      std::cerr << "serve: SLO BREACHED (" << report.breaches
                << " episode(s))\n";
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}

// Health-plane simulation: broker outages and link flaps detected through
// probes, with stale views, hysteresis quarantine, and budgeted repair —
// the operator's view of how long dead capacity stays believed-routable.
int cmd_health(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto env = bsr::io::experiment_env();
  const auto topo = bsr::topology::load_topology_file(argv[2]);
  const auto k = parse_u32("k", argv[4]);
  const double probe_interval =
      argc > 5 ? parse_positive_double("probe-interval", argv[5], 100.0) : 1.0;
  const BrokerSet brokers = run_algorithm(topo, argv[3], k, env.seed);

  std::vector<bsr::graph::FailureGroup> groups;
  for (bsr::graph::NodeId v = topo.num_ases; v < topo.num_vertices(); ++v) {
    groups.push_back(bsr::graph::incident_group(topo.graph, v));
  }
  bsr::sim::HealthChurnConfig churn;
  bsr::sim::LinkChurnConfig link;
  link.outage_rate = groups.empty() ? 0.0 : 0.05;
  bsr::sim::HealthConfig health;
  health.probe_interval = probe_interval;
  bsr::sim::RepairPolicy repair;
  repair.budget = std::max<std::uint32_t>(k / 20, 2);

  bsr::graph::Rng rng(env.seed + 60);
  const auto result = bsr::sim::simulate_churn_with_health(
      topo.graph, brokers, churn, link, groups, health, repair, rng);

  std::cout << "broker set: " << brokers.size() << " members; probe interval "
            << bsr::io::format_double(probe_interval, 2) << "; horizon "
            << bsr::io::format_double(churn.horizon, 0) << "\n";
  bsr::io::Table table({"metric", "value"});
  table.row().cell("departures / returns").cell(
      std::to_string(result.departures) + " / " + std::to_string(result.returns));
  table.row().cell("link outages / heals").cell(
      std::to_string(result.link_outages) + " / " +
      std::to_string(result.link_heals));
  table.row().cell("probe rounds").cell(result.probe_rounds);
  table.row().cell("views published").cell(result.views_published);
  table.row().cell("quarantines").cell(result.quarantines);
  table.row().cell("false-positive rate").percent(result.false_positive_rate());
  table.row()
      .cell("mean detection latency")
      .cell(result.mean_detection_latency(), 2);
  table.row().cell("dead-routable broker-time").cell(result.dead_routable_time, 1);
  table.row().cell("shunned-up broker-time").cell(result.shunned_up_time, 1);
  table.row()
      .cell("mean believed connectivity")
      .percent(result.mean_believed_connectivity);
  table.row()
      .cell("mean oracle connectivity")
      .percent(result.mean_oracle_connectivity);
  table.row()
      .cell("repair attempts (failed)")
      .cell(std::to_string(result.repair_attempts) + " (" +
            std::to_string(result.failed_repair_attempts) + ")");
  table.row()
      .cell("replacements recruited")
      .cell(static_cast<std::uint64_t>(result.replacements_added));
  table.print(std::cout);
  return 0;
}

// Proactive-vs-reactive comparison: plain MaxSG and the r-redundant
// selection at the same budget, scored by the worst case the adversary can
// inflict — any r broker failures, or (with --groups) any single IXP outage.
int cmd_robust(int argc, char** argv) {
  bool group_mode = false;
  int first = 2;
  for (; first < argc; ++first) {
    const std::string arg = argv[first];
    if (arg == "--groups") {
      group_mode = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "brokerctl robust: unknown option '" << arg << "'\n";
      return usage();
    }
    break;
  }
  if (first + 1 >= argc) return usage();
  const auto topo = bsr::topology::load_topology_file(argv[first]);
  const auto& g = topo.graph;
  const auto k = parse_u32("k", argv[first + 1]);
  const std::uint32_t r =
      first + 2 < argc ? parse_u32("r", argv[first + 2]) : 1;

  std::vector<bsr::graph::FailureGroup> groups;
  if (group_mode) {
    if (topo.num_ixps == 0) {
      std::cerr << "brokerctl robust: topology has no IXPs to fail\n";
      return 1;
    }
    groups.reserve(topo.num_ixps);
    for (bsr::graph::NodeId v = topo.num_ases; v < topo.num_vertices(); ++v) {
      groups.push_back(bsr::graph::incident_group(g, v));
    }
  }

  bsr::broker::RobustOptions options;
  if (group_mode) {
    options.mode = bsr::broker::RobustMode::kFailureGroups;
    options.groups = groups;
  } else {
    options.redundancy = r;
  }

  const BrokerSet plain = bsr::broker::maxsg(g, k).brokers;
  const auto robust = bsr::broker::robust_maxsg(g, k, options);

  const auto worst_of = [&](const BrokerSet& b) {
    return group_mode
               ? bsr::broker::worst_case_surviving_pairs(
                     g, b, std::span<const bsr::graph::FailureGroup>(groups))
               : bsr::broker::worst_case_surviving_pairs(g, b, r);
  };
  const double total_pairs =
      static_cast<double>(g.num_vertices()) *
      static_cast<double>(g.num_vertices() - 1) / 2.0;
  const std::uint64_t plain_worst = worst_of(plain);
  const std::uint64_t robust_worst = worst_of(robust.brokers);

  std::cout << "adversary: "
            << (group_mode ? "any single IXP outage"
                           : "any " + std::to_string(r) + " broker failure(s)")
            << "\n";
  bsr::io::Table table(
      {"selection", "members", "coverage", "nominal conn", "surviving conn"});
  table.row()
      .cell("maxsg (plain)")
      .cell(static_cast<std::uint64_t>(plain.size()))
      .cell(std::uint64_t{bsr::broker::coverage(g, plain)})
      .percent(bsr::broker::saturated_connectivity(g, plain))
      .percent(static_cast<double>(plain_worst) / total_pairs);
  table.row()
      .cell(group_mode ? "robust (groups)" : "robust (r=" + std::to_string(r) + ")")
      .cell(static_cast<std::uint64_t>(robust.brokers.size()))
      .cell(std::uint64_t{robust.coverage})
      .percent(bsr::broker::saturated_connectivity(g, robust.brokers))
      .percent(static_cast<double>(robust_worst) / total_pairs);
  table.print(std::cout);
  std::cout << "robust surviving pairs " << robust_worst << " vs plain "
            << plain_worst << " ("
            << (robust_worst >= plain_worst ? "no worse" : "WORSE")
            << " under this adversary)\n";
  return 0;
}

// Legacy `stats <in.topo>` form: Table-2-style dataset summary.
int cmd_dataset_stats(const std::string& path) {
  const auto env = bsr::io::experiment_env();
  const auto topo = bsr::topology::load_topology_file(path);
  const auto summary = bsr::topology::summarize(topo, env.bfs_sources, env.seed);
  bsr::io::Table table({"statistic", "value"});
  table.row().cell("ASes").cell(std::uint64_t{summary.num_ases});
  table.row().cell("IXPs").cell(std::uint64_t{summary.num_ixps});
  table.row().cell("AS-AS edges").cell(summary.as_as_edges);
  table.row().cell("IXP memberships").cell(summary.ixp_memberships);
  table.row().cell("largest component").cell(std::uint64_t{summary.largest_component});
  table.row().cell("IXP attachment rate").percent(summary.ixp_attachment_rate);
  table.row().cell("Prob[d <= 4]").percent(summary.alpha_within_beta);
  table.print(std::cout);
  return 0;
}

// Topology inspector: generate the calibrated synthetic Internet at the
// requested scale and print the numbers an operator sizes a deployment by —
// vertex/edge counts, the degree profile, and the memory-locality metrics
// the renumbering pass targets (average neighbor-id gap before/after).
int cmd_topo(int argc, char** argv) {
  const auto env = bsr::io::experiment_env();
  double scale = env.scale;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      scale = parse_positive_double("scale", arg.substr(std::strlen("--scale=")),
                                    10.0);
      continue;
    }
    if (arg == "--scale") {
      if (i + 1 >= argc) {
        std::cerr << "brokerctl topo: --scale needs a value\n";
        return usage();
      }
      scale = parse_positive_double("scale", argv[++i], 10.0);
      continue;
    }
    std::cerr << "brokerctl topo: unknown argument '" << arg << "'\n";
    return usage();
  }

  auto config = bsr::topology::InternetConfig{}.scaled(scale);
  config.seed = env.seed;
  const auto topo = bsr::topology::make_internet(config);
  const auto& g = topo.graph;
  const auto degrees = bsr::graph::compute_degree_stats(g);
  const auto renumbered = bsr::topology::renumber_topology(topo);
  const double gap_before = bsr::graph::average_neighbor_gap(g);
  const double gap_after =
      bsr::graph::average_neighbor_gap(renumbered.topo.graph);

  bsr::io::Table table({"metric", "value"});
  table.row().cell("scale").cell(scale, 4);
  table.row().cell("ASes").cell(std::uint64_t{topo.num_ases});
  table.row().cell("IXPs").cell(std::uint64_t{topo.num_ixps});
  table.row().cell("vertices").cell(std::uint64_t{g.num_vertices()});
  table.row().cell("edges").cell(g.num_edges());
  table.row().cell("degree min / max").cell(std::to_string(degrees.min) + " / " +
                                            std::to_string(degrees.max));
  table.row().cell("degree mean").cell(degrees.mean, 2);
  table.row().cell("degree median").cell(degrees.median, 1);
  table.row().cell("degree p90 / p99").cell(
      bsr::io::format_double(degrees.p90, 1) + " / " +
      bsr::io::format_double(degrees.p99, 1));
  if (degrees.power_law_alpha > 0.0) {
    table.row().cell("power-law alpha").cell(degrees.power_law_alpha, 2);
  }
  table.row().cell("avg neighbor gap").cell(gap_before, 1);
  table.row().cell("avg neighbor gap (renumbered)").cell(gap_after, 1);
  table.row().cell("gap reduction").percent(
      gap_before > 0.0 ? 1.0 - gap_after / gap_before : 0.0);
  table.print(std::cout);
  return 0;
}

bool known_subcommand(const std::string& cmd) {
  return cmd == "gen" || cmd == "import-caida" || cmd == "select" ||
         cmd == "eval" || cmd == "export-dot" || cmd == "stats" ||
         cmd == "faults" || cmd == "health" || cmd == "serve" ||
         cmd == "robust" || cmd == "record" || cmd == "report" ||
         cmd == "slo" || cmd == "episodes" || cmd == "topo";
}

/// Runs fn() with the telemetry plane zeroed at entry; on the way out dumps
/// the counter table to stderr (so stdout stays the wrapped command's own)
/// and optionally the versioned JSON snapshot to `stats_out`.
template <class Fn>
int run_with_stats(const std::string& stats_out, Fn&& fn) {
  if (!BSR_STATS_ENABLED) {
    std::cerr << "brokerctl stats: built with BSR_STATS=OFF — "
                 "all counters will read zero\n";
  }
  bsr::obs::reset();
  const int rc = fn();
  const auto snap = bsr::obs::snapshot();
  bsr::obs::dump_pretty(std::cerr, snap);
  if (!stats_out.empty()) {
    std::ofstream out(stats_out, std::ios::trunc);
    if (!out) {
      // An unwritable path is a runtime failure, but never *masks* the
      // wrapped command's own failure code.
      std::cerr << "brokerctl stats: cannot open " << stats_out << '\n';
      return rc != 0 ? rc : 1;
    }
    bsr::obs::write_json(out, snap);
    if (!out) {
      std::cerr << "brokerctl stats: failed writing " << stats_out << '\n';
      return rc != 0 ? rc : 1;
    }
    std::cerr << "stats: wrote " << stats_out << '\n';
  }
  return rc;
}

// `stats` is two commands sharing a name: the legacy dataset summary
// (`stats <in.topo>`) and the telemetry wrapper (`stats [--stats-out=<file>]
// <subcommand> [args...]`). Disambiguation: an operand naming a subcommand
// selects the wrapper; anything else is a topology path.
int cmd_stats(int argc, char** argv) {
  std::string stats_out;
  int first = 2;
  for (; first < argc; ++first) {
    const std::string arg = argv[first];
    if (arg.rfind("--stats-out=", 0) == 0) {
      stats_out = arg.substr(std::strlen("--stats-out="));
      if (stats_out.empty()) {
        std::cerr << "brokerctl stats: --stats-out needs a file path\n";
        return usage();
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "brokerctl stats: unknown option '" << arg << "'\n";
      return usage();
    }
    break;
  }
  if (first >= argc) return usage();
  if (!known_subcommand(argv[first])) {
    // Legacy dataset summary; --stats-out instruments it like any other.
    if (stats_out.empty()) return cmd_dataset_stats(argv[first]);
    return run_with_stats(stats_out,
                          [&] { return cmd_dataset_stats(argv[first]); });
  }
  std::vector<char*> sub;
  sub.push_back(argv[0]);
  for (int j = first; j < argc; ++j) sub.push_back(argv[j]);
  return run_with_stats(stats_out, [&] {
    return dispatch(static_cast<int>(sub.size()), sub.data());
  });
}

// Flight-recorder wrapper: runs any subcommand with the event journal and
// interval sampler on, then writes the requested artifacts. Every output
// path is opened *before* the run so an unwritable path fails fast (exit 1,
// diagnostic naming the path) instead of after minutes of simulation.
int cmd_record(int argc, char** argv) {
  std::string events_out, series_out, trace_out;
  double interval = 1.0;
  int first = 2;
  const auto flag_value = [&](const std::string& arg, const char* flag,
                              std::string& out) {
    if (arg.rfind(flag, 0) != 0) return false;
    out = arg.substr(std::strlen(flag));
    if (out.empty()) {
      throw std::runtime_error(std::string(flag) + " needs a file path");
    }
    return true;
  };
  for (; first < argc; ++first) {
    const std::string arg = argv[first];
    if (flag_value(arg, "--events-out=", events_out) ||
        flag_value(arg, "--series-out=", series_out) ||
        flag_value(arg, "--trace-out=", trace_out)) {
      continue;
    }
    if (arg.rfind("--interval=", 0) == 0) {
      interval = parse_positive_double(
          "interval", arg.substr(std::strlen("--interval=")), 1e9);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "brokerctl record: unknown option '" << arg << "'\n";
      return usage();
    }
    break;
  }
  if (first >= argc) return usage();
  if (!known_subcommand(argv[first])) {
    std::cerr << "brokerctl record: unknown subcommand '" << argv[first]
              << "'\n";
    return usage();
  }
  std::ofstream events_file, series_file, trace_file;
  const auto open_out = [](std::ofstream& f, const std::string& path) {
    if (path.empty()) return true;
    f.open(path, std::ios::trunc);
    if (!f) {
      std::cerr << "brokerctl record: cannot open " << path << '\n';
      return false;
    }
    return true;
  };
  if (!open_out(events_file, events_out) ||
      !open_out(series_file, series_out) || !open_out(trace_file, trace_out)) {
    return 1;
  }
  if (!BSR_STATS_ENABLED) {
    std::cerr << "brokerctl record: built with BSR_STATS=OFF — "
                 "the journal will be empty\n";
  }

  std::vector<char*> sub;
  sub.push_back(argv[0]);
  for (int j = first; j < argc; ++j) sub.push_back(argv[j]);
  bsr::obs::JournalOptions options;
  options.series_interval = interval;
  bsr::obs::start_recording(options);
  int rc = 0;
  try {
    rc = dispatch(static_cast<int>(sub.size()), sub.data());
  } catch (...) {
    bsr::obs::stop_recording();
    throw;
  }
  bsr::obs::stop_recording();

  const bsr::obs::Journal journal = bsr::obs::snapshot_journal();
  const auto& series = bsr::obs::journal_series();
  if (!events_out.empty()) bsr::obs::write_events_jsonl(events_file, journal);
  if (!series_out.empty()) bsr::obs::write_series_csv(series_file, series);
  if (!trace_out.empty()) {
    bsr::obs::write_journal_chrome_trace(trace_file, journal, series);
  }
  const auto flush = [&rc](std::ofstream& f, const std::string& path) {
    if (path.empty()) return;
    f.flush();
    if (!f) {
      std::cerr << "brokerctl record: failed writing " << path << '\n';
      if (rc == 0) rc = 1;
    } else {
      std::cerr << "record: wrote " << path << '\n';
    }
  };
  flush(events_file, events_out);
  flush(series_file, series_out);
  flush(trace_file, trace_out);
  std::cerr << "record: " << journal.events.size() << " events ("
            << journal.dropped << " dropped), " << series.size()
            << " series rounds\n";
  return rc;
}

/// One journal line, minimally parsed. Field extraction is string-based:
/// the writer (write_events_jsonl) emits a fixed `"key": value` layout, so
/// a JSON library would be dead weight here.
struct JournalLine {
  double t = 0.0;
  std::string type;
  std::uint64_t subject = 0;
  std::uint64_t corr = 0;
};

bool parse_journal_field(const std::string& line, const std::string& key,
                         std::string& out) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t begin = pos + needle.size();
  std::size_t end;
  if (begin < line.size() && line[begin] == '"') {
    ++begin;
    end = line.find('"', begin);
  } else {
    end = line.find_first_of(",}", begin);
  }
  if (end == std::string::npos || end < begin) return false;
  out = line.substr(begin, end - begin);
  return true;
}

bool parse_journal_line(const std::string& line, JournalLine& out) {
  std::string t, subject, corr;
  if (!parse_journal_field(line, "t", t) ||
      !parse_journal_field(line, "type", out.type) ||
      !parse_journal_field(line, "subject", subject) ||
      !parse_journal_field(line, "corr", corr)) {
    return false;
  }
  try {
    out.t = std::stod(t);
    out.subject = std::stoull(subject);
    out.corr = std::stoull(corr);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

// Journal summary: per-type event counts, the worst misrouting window (the
// window of length W with the most integrated broker-down-but-not-yet-
// quarantined exposure — the interval a departure stays invisible to the
// detector is exactly when routing misroutes), and quarantine dwell times
// (quarantine -> first probation/recovery per failure episode).
int cmd_report(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string path;
  double window = 10.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--window=", 0) == 0) {
      window = parse_positive_double("window",
                                     arg.substr(std::strlen("--window=")), 1e9);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "brokerctl report: unknown option '" << arg << "'\n";
      return usage();
    }
    if (!path.empty()) return usage();
    path = arg;
  }
  if (path.empty()) return usage();
  std::ifstream in(path);
  if (!in) {
    std::cerr << "brokerctl report: cannot open " << path << '\n';
    return 1;
  }
  std::string line;
  if (!std::getline(in, line) ||
      line.find("\"schema\": \"bsr-events/1\"") == std::string::npos) {
    throw std::runtime_error("'" + path +
                             "' is not a bsr-events/1 journal (bad header)");
  }
  // The exporter's header carries the ring's overwrite count; surface it so
  // a reader knows the earliest correlation chains may be cut short.
  std::uint64_t ring_dropped = 0;
  {
    std::string dropped_text;
    if (parse_journal_field(line, "dropped", dropped_text)) {
      try {
        ring_dropped = std::stoull(dropped_text);
      } catch (const std::exception&) {
      }
    }
  }

  std::map<std::string, std::uint64_t> counts;
  // Misrouting exposure: a departed broker is "exposed" until the detector
  // quarantines it or it returns on its own. Lines arrive time-sorted
  // (export order), so one forward scan closes intervals correctly.
  struct Interval {
    double start = 0.0;
    double end = 0.0;
  };
  std::map<std::uint64_t, double> down_since;  // vertex -> departure time
  std::vector<Interval> exposure;
  std::map<std::uint64_t, double> quarantined_at;  // episode -> quarantine time
  std::vector<double> dwells;
  double horizon = 0.0;
  std::uint64_t bad_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalLine event;
    if (!parse_journal_line(line, event)) {
      ++bad_lines;
      continue;
    }
    ++counts[event.type];
    horizon = std::max(horizon, event.t);
    if (event.type == "sim.churn.departure") {
      down_since.emplace(event.subject, event.t);
    } else if (event.type == "sim.churn.return" ||
               event.type == "sim.health.quarantine") {
      const auto it = down_since.find(event.subject);
      if (it != down_since.end()) {
        exposure.push_back({it->second, event.t});
        down_since.erase(it);
      }
    }
    if (event.type == "sim.health.quarantine" && event.corr != 0) {
      quarantined_at.emplace(event.corr, event.t);
    } else if (event.type == "sim.health.probation" ||
               event.type == "sim.health.recover") {
      const auto it = quarantined_at.find(event.corr);
      if (it != quarantined_at.end()) {
        dwells.push_back(event.t - it->second);
        quarantined_at.erase(it);
      }
    }
  }
  if (bad_lines > 0) {
    std::cerr << "brokerctl report: skipped " << bad_lines
              << " unparseable line(s)\n";
  }
  // Departures never detected or returned: exposed to the end of the data.
  for (const auto& [vertex, since] : down_since) {
    exposure.push_back({since, horizon});
  }

  if (ring_dropped > 0) {
    std::cout << "ring dropped " << ring_dropped
              << " record(s) before export — oldest chains truncated\n";
  }
  bsr::io::Table counts_table({"event", "count"});
  for (const auto& [type, count] : counts) {
    counts_table.row().cell(type).cell(count);
  }
  counts_table.print(std::cout);

  // Worst window: maximize the integral of the exposure step function over
  // [s, s + window]. The maximum is attained with the window flush against a
  // breakpoint, so trying every interval start and every end - window is
  // exhaustive. O(n^2) on the handful of departures a sim produces.
  if (exposure.empty()) {
    std::cout << "misrouting exposure: none (no undetected departures)\n";
  } else {
    const auto window_exposure = [&](double s) {
      double total = 0.0;
      for (const Interval& iv : exposure) {
        total += std::max(
            0.0, std::min(iv.end, s + window) - std::max(iv.start, s));
      }
      return total;
    };
    double best_start = 0.0;
    double best = -1.0;
    for (const Interval& iv : exposure) {
      for (const double s : {iv.start, iv.end - window}) {
        const double candidate = window_exposure(std::max(0.0, s));
        if (candidate > best) {
          best = candidate;
          best_start = std::max(0.0, s);
        }
      }
    }
    std::cout << "worst misrouting window: ["
              << bsr::io::format_double(best_start, 2) << ", "
              << bsr::io::format_double(best_start + window, 2) << ") with "
              << bsr::io::format_double(best, 2)
              << " broker-time of undetected-down exposure\n";
  }

  if (dwells.empty()) {
    std::cout << "quarantine dwells: none resolved\n";
  } else {
    // Same power-of-two-buckets convention as the registry histograms,
    // over integral milli-units of simulated time.
    std::array<std::uint64_t, bsr::obs::kHistogramBuckets> buckets{};
    for (const double dwell : dwells) {
      ++buckets[bsr::obs::bucket_of(static_cast<std::uint64_t>(dwell * 1e3))];
    }
    bsr::io::Table dwell_table({"dwell >= (ms)", "episodes"});
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      const std::uint64_t lo = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
      dwell_table.row().cell(lo).cell(buckets[b]);
    }
    dwell_table.print(std::cout);
  }
  if (!quarantined_at.empty()) {
    std::cout << quarantined_at.size()
              << " episode(s) still quarantined at end of journal\n";
  }
  return 0;
}

// Offline SLO evaluator: reconstruct the monitor's input from a recorded
// bsr-events/1 journal and replay it through the same SloMonitor the live
// `serve --slo` runs. The journal's batch events carry the exact per-round
// tallies and costs the live monitor saw, so both verdicts agree byte for
// byte on the same run.
int cmd_slo(int argc, char** argv) {
  std::string path, out_path;
  // Defaults cover the route-serving plane's standing promises; override
  // any of them with --spec.
  std::string spec_text =
      "fresh_min=0.99,refusal_max=0.05,stale_max=64,window=5,long_window=30";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--spec=", 0) == 0) {
      spec_text = arg.substr(std::strlen("--spec="));
      continue;
    }
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
      if (out_path.empty()) {
        std::cerr << "brokerctl slo: --out needs a file path\n";
        return usage();
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "brokerctl slo: unknown option '" << arg << "'\n";
      return usage();
    }
    if (!path.empty()) return usage();
    path = arg;
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "brokerctl slo: cannot open " << path << '\n';
    return 1;
  }
  std::string line;
  if (!std::getline(in, line) ||
      line.find("\"schema\": \"bsr-events/1\"") == std::string::npos) {
    throw std::runtime_error("'" + path +
                             "' is not a bsr-events/1 journal (bad header)");
  }

  std::map<std::string, bsr::obs::Event, std::less<>> event_types;
  for (std::size_t e = 0; e < bsr::obs::kNumEvents; ++e) {
    const auto type = static_cast<bsr::obs::Event>(e);
    event_types.emplace(std::string(bsr::obs::name(type)), type);
  }
  bsr::obs::Journal journal;
  std::uint64_t bad_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalLine parsed;
    if (!parse_journal_line(line, parsed)) {
      ++bad_lines;
      continue;
    }
    const auto it = event_types.find(parsed.type);
    if (it == event_types.end()) continue;  // foreign event family
    bsr::obs::EventRecord record;
    record.time = parsed.t;
    record.type = it->second;
    record.subject = parsed.subject;
    record.correlation = parsed.corr;
    record.seq = journal.recorded++;
    journal.events.push_back(record);
  }
  if (bad_lines > 0) {
    std::cerr << "brokerctl slo: skipped " << bad_lines
              << " unparseable line(s)\n";
  }

  const auto samples = bsr::obs::slo_samples_from_journal(journal);
  if (samples.empty()) {
    std::cerr << "brokerctl slo: no sim.route_service.batch events in " << path
              << " — nothing to evaluate\n";
    return 1;
  }
  bsr::obs::SloMonitor monitor(bsr::obs::parse_slo_spec(spec_text));
  for (const bsr::obs::SloSample& s : samples) monitor.observe(s);
  const bsr::obs::SloReport& report = monitor.report();
  print_slo_summary(report);
  int rc = report.ok() ? 0 : 1;
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "brokerctl slo: cannot open " << out_path << '\n';
      return 1;
    }
    bsr::obs::write_slo_json(out, report);
    out.flush();
    if (!out) {
      std::cerr << "brokerctl slo: failed writing " << out_path << '\n';
      return 1;
    }
    std::cerr << "slo: wrote " << out_path << '\n';
  }
  if (rc != 0) {
    std::cerr << "brokerctl slo: SLO BREACHED (" << report.breaches
              << " episode(s))\n";
  }
  return rc;
}

// Offline episode analyzer: rebuild the journal (and optionally the qtrace
// rows) from recorded JSONL files and run the same reconstruction the live
// `serve --episodes-out` path runs, so both reports agree byte for byte for
// the same run. Prints the worst episodes by exposure with their phase
// decomposition; exit 1 when a drop-free journal contains malformed
// lifecycles (a producer contract violation), 0 otherwise — truncation by
// the ring is flagged, not fatal.
int cmd_episodes(int argc, char** argv) {
  std::string path, qtrace_path, out_path, trace_path;
  std::uint32_t top = 10;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--qtrace=", 0) == 0) {
      qtrace_path = arg.substr(std::strlen("--qtrace="));
      continue;
    }
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
      continue;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace-out="));
      continue;
    }
    if (arg.rfind("--top=", 0) == 0) {
      top = parse_u32("top", arg.substr(std::strlen("--top=")));
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "brokerctl episodes: unknown option '" << arg << "'\n";
      return usage();
    }
    if (!path.empty()) return usage();
    path = arg;
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "brokerctl episodes: cannot open " << path << '\n';
    return 1;
  }
  std::string line;
  if (!std::getline(in, line) ||
      line.find("\"schema\": \"bsr-events/1\"") == std::string::npos) {
    throw std::runtime_error("'" + path +
                             "' is not a bsr-events/1 journal (bad header)");
  }
  const auto header_u64 = [](const std::string& header, const char* key) {
    std::string text;
    if (!parse_journal_field(header, key, text)) return std::uint64_t{0};
    try {
      return static_cast<std::uint64_t>(std::stoull(text));
    } catch (const std::exception&) {
      return std::uint64_t{0};
    }
  };

  std::map<std::string, bsr::obs::Event, std::less<>> event_types;
  for (std::size_t e = 0; e < bsr::obs::kNumEvents; ++e) {
    const auto type = static_cast<bsr::obs::Event>(e);
    event_types.emplace(std::string(bsr::obs::name(type)), type);
  }
  bsr::obs::Journal journal;
  journal.dropped = header_u64(line, "dropped");
  std::uint64_t bad_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalLine parsed;
    if (!parse_journal_line(line, parsed)) {
      ++bad_lines;
      continue;
    }
    const auto it = event_types.find(parsed.type);
    if (it == event_types.end()) continue;  // foreign event family
    bsr::obs::EventRecord record;
    record.time = parsed.t;
    record.type = it->second;
    record.subject = parsed.subject;
    record.correlation = parsed.corr;
    record.seq = journal.recorded++;
    journal.events.push_back(record);
  }
  journal.recorded += journal.dropped;
  if (bad_lines > 0) {
    std::cerr << "brokerctl episodes: skipped " << bad_lines
              << " unparseable line(s)\n";
  }

  // Optional qtrace replay for degraded-answer attribution. Only the fields
  // the reconstructor reads (time, correlation, tag) need to survive the
  // round trip; the rest ride along for completeness.
  bsr::obs::QtraceSnapshot qtrace;
  bool have_qtrace = false;
  if (!qtrace_path.empty()) {
    std::ifstream qin(qtrace_path);
    if (!qin) {
      std::cerr << "brokerctl episodes: cannot open " << qtrace_path << '\n';
      return 1;
    }
    if (!std::getline(qin, line) ||
        line.find("\"schema\": \"bsr-qtrace/1\"") == std::string::npos) {
      throw std::runtime_error("'" + qtrace_path +
                               "' is not a bsr-qtrace/1 file (bad header)");
    }
    qtrace.dropped = header_u64(line, "dropped");
    // Answer-tag names indexed by sim::AnswerStatus value, mirroring
    // write_qtrace_jsonl's rendering.
    const std::array<std::string, 4> tags = {"fresh", "stale_served",
                                             "shedded", "refused"};
    std::uint64_t bad_rows = 0;
    while (std::getline(qin, line)) {
      if (line.empty()) continue;
      std::string id, t, corr, tag, stale;
      if (!parse_journal_field(line, "id", id) ||
          !parse_journal_field(line, "t", t) ||
          !parse_journal_field(line, "corr", corr) ||
          !parse_journal_field(line, "tag", tag) ||
          !parse_journal_field(line, "stale", stale)) {
        ++bad_rows;
        continue;
      }
      bsr::obs::QueryTraceRow row;
      try {
        row.trace_id = std::stoull(id);
        row.time = std::stod(t);
        row.correlation = std::stoull(corr);
        row.stale_behind = std::stoull(stale);
      } catch (const std::exception&) {
        ++bad_rows;
        continue;
      }
      const auto tag_it = std::find(tags.begin(), tags.end(), tag);
      if (tag_it == tags.end()) {
        ++bad_rows;
        continue;
      }
      row.status = static_cast<std::uint8_t>(tag_it - tags.begin());
      qtrace.rows.push_back(row);
    }
    qtrace.recorded = qtrace.rows.size() + qtrace.dropped;
    if (bad_rows > 0) {
      std::cerr << "brokerctl episodes: skipped " << bad_rows
                << " unparseable qtrace row(s)\n";
    }
    have_qtrace = true;
  }

  const bsr::obs::EpisodeReport report =
      bsr::obs::episodes_from_journal(journal, have_qtrace ? &qtrace : nullptr);

  std::uint64_t closed = 0, truncated = 0;
  for (const bsr::obs::Episode& ep : report.episodes) {
    closed += ep.closed ? 1 : 0;
    truncated += ep.truncated ? 1 : 0;
  }
  std::cout << "episodes: " << report.episodes.size() << " reconstructed ("
            << closed << " closed, " << truncated << " truncated), "
            << report.malformed << " malformed lifecycle(s)\n";
  if (report.truncated()) {
    std::cerr << "brokerctl episodes: ring dropped " << report.journal_dropped
              << " journal record(s) / " << report.qtrace_dropped
              << " qtrace row(s) — truncated episodes carry partial phase "
                 "sums\n";
  }

  if (!report.episodes.empty()) {
    // Worst episodes by exposure; ties broken by the report's deterministic
    // (open_time, kind, id) order.
    std::vector<const bsr::obs::Episode*> worst;
    worst.reserve(report.episodes.size());
    for (const bsr::obs::Episode& ep : report.episodes) worst.push_back(&ep);
    std::stable_sort(worst.begin(), worst.end(),
                     [](const bsr::obs::Episode* a, const bsr::obs::Episode* b) {
                       return a->span() > b->span();
                     });
    if (worst.size() > top) worst.resize(top);
    bsr::io::Table table({"kind", "id", "subject", "exposure", "detect",
                          "react", "queue", "exec", "drain", "attempts",
                          "degraded", "flags"});
    for (const bsr::obs::Episode* ep : worst) {
      std::string flags;
      if (!ep->closed) flags += "open ";
      if (ep->truncated) flags += "truncated ";
      if (ep->gave_up) flags += "gave-up ";
      if (!flags.empty()) flags.pop_back();
      auto row = table.row();
      row.cell(std::string(bsr::obs::to_string(ep->kind)))
          .cell(ep->id)
          .cell(ep->subject)
          .cell(ep->span(), 3);
      for (std::size_t p = 0; p < bsr::obs::kNumEpisodePhases; ++p) {
        row.cell(ep->phases[p], 3);
      }
      row.cell(std::uint64_t{ep->attempts})
          .cell(ep->stale_served + ep->shedded + ep->refused)
          .cell(flags.empty() ? "-" : flags);
    }
    table.print(std::cout);
  }

  int rc = 0;
  if (report.malformed > 0 && report.journal_dropped == 0) {
    std::cerr << "brokerctl episodes: " << report.malformed
              << " malformed lifecycle(s) in a drop-free journal — producer "
                 "contract violated\n";
    rc = 1;
  }
  const auto write_out = [&](const std::string& out, auto writer) {
    if (out.empty()) return;
    std::ofstream os(out, std::ios::trunc);
    if (!os) {
      std::cerr << "brokerctl episodes: cannot open " << out << '\n';
      rc = 1;
      return;
    }
    writer(os);
    os.flush();
    if (!os) {
      std::cerr << "brokerctl episodes: failed writing " << out << '\n';
      rc = 1;
      return;
    }
    std::cerr << "episodes: wrote " << out << '\n';
  };
  write_out(out_path, [&](std::ostream& os) {
    bsr::obs::write_episodes_jsonl(os, report);
  });
  write_out(trace_path, [&](std::ostream& os) {
    bsr::obs::write_episode_chrome_trace(os, report);
  });
  return rc;
}

int dispatch(int argc, char** argv) {
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc, argv);
  if (cmd == "import-caida") return cmd_import_caida(argc, argv);
  if (cmd == "select") return cmd_select(argc, argv, /*full_eval=*/false);
  if (cmd == "eval") return cmd_select(argc, argv, /*full_eval=*/true);
  if (cmd == "export-dot") return cmd_export_dot(argc, argv);
  if (cmd == "stats") return cmd_stats(argc, argv);
  if (cmd == "faults") return cmd_faults(argc, argv);
  if (cmd == "health") return cmd_health(argc, argv);
  if (cmd == "serve") return cmd_serve(argc, argv);
  if (cmd == "robust") return cmd_robust(argc, argv);
  if (cmd == "record") return cmd_record(argc, argv);
  if (cmd == "report") return cmd_report(argc, argv);
  if (cmd == "slo") return cmd_slo(argc, argv);
  if (cmd == "episodes") return cmd_episodes(argc, argv);
  if (cmd == "topo") return cmd_topo(argc, argv);
  std::cerr << "brokerctl: unknown subcommand '" << cmd << "'\n";
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    return dispatch(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "brokerctl: " << error.what() << '\n';
    return 1;
  }
}
