#include "graph/degree_stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bsr::graph {

namespace {

double percentile(const std::vector<std::uint32_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

}  // namespace

DegreeStats compute_degree_stats(const CsrGraph& g, std::uint32_t power_law_xmin) {
  DegreeStats stats;
  const NodeId n = g.num_vertices();
  if (n == 0) return stats;

  std::vector<std::uint32_t> degrees(n);
  for (NodeId v = 0; v < n; ++v) degrees[v] = g.degree(v);
  std::sort(degrees.begin(), degrees.end());

  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = std::accumulate(degrees.begin(), degrees.end(), 0.0) /
               static_cast<double>(n);
  stats.median = percentile(degrees, 0.5);
  stats.p90 = percentile(degrees, 0.9);
  stats.p99 = percentile(degrees, 0.99);

  // Continuous MLE for the tail exponent: alpha = 1 + m / sum(ln(d / xmin)).
  double log_sum = 0.0;
  std::uint64_t tail_count = 0;
  for (const std::uint32_t d : degrees) {
    if (d >= power_law_xmin && d > 0) {
      log_sum += std::log(static_cast<double>(d) / static_cast<double>(power_law_xmin));
      ++tail_count;
    }
  }
  if (tail_count >= 10 && log_sum > 0.0) {
    stats.power_law_alpha = 1.0 + static_cast<double>(tail_count) / log_sum;
    stats.power_law_xmin = power_law_xmin;
  }
  return stats;
}

std::vector<std::uint64_t> degree_histogram(const CsrGraph& g) {
  std::uint32_t max_degree = 0;
  for (NodeId v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_degree) + 1, 0);
  for (NodeId v = 0; v < g.num_vertices(); ++v) ++hist[g.degree(v)];
  return hist;
}

std::vector<NodeId> vertices_by_degree_desc(const CsrGraph& g) {
  std::vector<NodeId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  return order;
}

}  // namespace bsr::graph
