#include "sim/qos.hpp"

#include <cmath>

namespace bsr::sim {

using bsr::graph::NodeId;

double path_qos_success(const QosModel& model, const bsr::broker::BrokerSet& brokers,
                        std::span<const NodeId> path) {
  if (path.size() <= 1) return 1.0;
  const std::uint32_t total_hops = static_cast<std::uint32_t>(path.size() - 1);
  const std::uint32_t bad_hops = undominated_hops(brokers, path);
  const std::uint32_t good_hops = total_hops - bad_hops;
  return std::pow(model.unsupervised_hop_success, bad_hops) *
         std::pow(model.supervised_hop_success, good_hops);
}

std::uint32_t undominated_hops(const bsr::broker::BrokerSet& brokers,
                               std::span<const NodeId> path) {
  std::uint32_t count = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!brokers.dominates_edge(path[i], path[i + 1])) ++count;
  }
  return count;
}

}  // namespace bsr::sim
