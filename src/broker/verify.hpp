// Independent invariant checkers and brute-force references.
//
// Every selection algorithm is validated in tests against these: they are
// written for clarity, not speed, and share no code with the optimized
// implementations they check.
#pragma once

#include <cstdint>
#include <span>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"

namespace bsr::broker {

/// True iff `path` is a valid path in g and every hop has an endpoint in B
/// (Definition 1 of the paper). An empty/1-vertex path is trivially valid.
[[nodiscard]] bool is_dominating_path(const bsr::graph::CsrGraph& g, const BrokerSet& b,
                                      std::span<const bsr::graph::NodeId> path);

/// True iff every pair u, v ∈ B ∪ N(B) has at least one B-dominating path —
/// the MCBG feasibility constraint (Problem 2). O(|V| + |E|) via components
/// of the dominated subgraph: the constraint holds iff all covered vertices
/// lie in one dominated component.
[[nodiscard]] bool has_pairwise_guarantee(const bsr::graph::CsrGraph& g,
                                          const BrokerSet& b);

/// Exhaustive MCB optimum: max f(B) over all subsets of size <= k.
/// Exponential — graphs of <= ~20 vertices only (tests).
[[nodiscard]] std::uint32_t brute_force_mcb_optimum(const bsr::graph::CsrGraph& g,
                                                    std::uint32_t k);

/// Exhaustive MCBG optimum: max f(B) over subsets of size <= k that satisfy
/// the pairwise dominating-path guarantee. Exponential — tests only.
[[nodiscard]] std::uint32_t brute_force_mcbg_optimum(const bsr::graph::CsrGraph& g,
                                                     std::uint32_t k);

// --- r-survivability (fault-tolerant selection) ----------------------------

/// Exhaustive worst case over all C(|B|, r) broker-failure scenarios of the
/// connected-pair count of the surviving dominated subgraph. Components are
/// found by DFS per scenario — no code shared with robust.cpp's incremental
/// union-find path. 0 when |B| <= r. Throws for |B| > 22 members.
[[nodiscard]] std::uint64_t brute_force_surviving_pairs(
    const bsr::graph::CsrGraph& g, const BrokerSet& b, std::uint32_t r);

/// Exhaustive worst case over single correlated failure groups: for each
/// group, its member edges are deleted and the dominated pair count of the
/// full set is recomputed by DFS. Throws on empty `groups`.
[[nodiscard]] std::uint64_t brute_force_group_surviving_pairs(
    const bsr::graph::CsrGraph& g, const BrokerSet& b,
    std::span<const bsr::graph::FailureGroup> groups);

/// Exhaustive r-redundant optimum: max over all broker subsets of size <= k
/// of brute_force_surviving_pairs. Doubly exponential in spirit — tiny test
/// graphs only (<= 22 vertices). tests/test_robust.cpp uses it to pin an
/// instance where greedy redundancy is strictly suboptimal (the note paper's
/// approximation failure).
[[nodiscard]] std::uint64_t brute_force_robust_optimum(const bsr::graph::CsrGraph& g,
                                                       std::uint32_t k,
                                                       std::uint32_t r);

}  // namespace bsr::broker
