#include "obs/timeseries.hpp"

#include <stdexcept>

namespace bsr::obs {

void IntervalSampler::begin(double start, double interval) {
  if (!(interval > 0.0)) {
    throw std::invalid_argument("IntervalSampler: interval must be > 0");
  }
  active_ = true;
  start_ = start;
  interval_ = interval;
  round_begin_ = start;
  last_ = snapshot();
  rows_.clear();
}

void IntervalSampler::advance(double now) {
  if (!active_ || now < next_boundary()) return;
  // One registry merge covers every boundary crossed by this call: counters
  // cannot move between the crossed rounds, so the first one gets the whole
  // delta and the rest close empty.
  const Snapshot current = snapshot();
  while (now >= next_boundary()) close_round(next_boundary(), current);
}

void IntervalSampler::finish(double now) {
  if (!active_) return;
  advance(now);
  const Snapshot current = snapshot();
  bool moved = false;
  for (std::size_t i = 0; i < kNumCounters && !moved; ++i) {
    moved = current.counters[i] != last_.counters[i];
  }
  if (now > round_begin_ || moved) {
    close_round(now > round_begin_ ? now : round_begin_, current);
  }
  active_ = false;
}

void IntervalSampler::close_round(double t_end, const Snapshot& current) {
  SeriesRow row;
  row.round = static_cast<std::uint64_t>(rows_.size());
  row.t_begin = round_begin_;
  row.t_end = t_end;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    row.deltas[i] = current.counters[i] - last_.counters[i];
  }
  rows_.push_back(row);
  last_ = current;
  round_begin_ = t_end;
}

}  // namespace bsr::obs
