#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_connected_random;
using bsr::test::make_cycle;
using bsr::test::make_path;
using bsr::test::make_random;
using bsr::test::make_star;
using bsr::test::naive_bfs;

TEST(Bfs, PathGraphDistances) {
  const CsrGraph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableVertices) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Bfs, RunnerReusableAcrossSources) {
  const CsrGraph g = make_cycle(8);
  BfsRunner runner(g.num_vertices());
  const auto d0 = runner.run(g, 0);
  EXPECT_EQ(d0[4], 4u);
  const auto d3 = runner.run(g, 3);
  EXPECT_EQ(d3[3], 0u);
  EXPECT_EQ(d3[7], 4u);
  EXPECT_EQ(d3[0], 3u);
}

TEST(Bfs, FilteredBfsRespectsPredicate) {
  const CsrGraph g = make_path(5);
  BfsRunner runner(g.num_vertices());
  // Block the 2-3 edge: everything past vertex 2 unreachable.
  const auto dist = runner.run_filtered(g, 0, [](NodeId u, NodeId v) {
    return !((u == 2 && v == 3) || (u == 3 && v == 2));
  });
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, BoundedBfsStopsAtDepth) {
  const CsrGraph g = make_path(10);
  BfsRunner runner(g.num_vertices());
  const auto dist = runner.run_bounded(g, 0, 3);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(Bfs, ShortestPathEndpoints) {
  const CsrGraph g = make_cycle(6);
  const auto path = bfs_shortest_path(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 3u);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(Bfs, ShortestPathTrivialAndUnreachable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const CsrGraph g = b.build();
  EXPECT_EQ(bfs_shortest_path(g, 1, 1), std::vector<NodeId>{1});
  EXPECT_TRUE(bfs_shortest_path(g, 0, 2).empty());
}

TEST(Bfs, StarGraphAllWithinTwo) {
  const CsrGraph g = make_star(20);
  const auto dist = bfs_distances(g, 5);
  EXPECT_EQ(dist[0], 1u);
  for (NodeId v = 1; v < 20; ++v) {
    if (v != 5) EXPECT_EQ(dist[v], 2u);
  }
}

class BfsRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsRandomTest, MatchesNaiveReference) {
  const CsrGraph g = make_random(60, 0.08, GetParam());
  BfsRunner runner(g.num_vertices());
  for (NodeId s = 0; s < g.num_vertices(); s += 7) {
    const auto fast = runner.run(g, s);
    const auto reference = naive_bfs(g, s);
    for (NodeId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(fast[v], reference[v]) << "source " << s << " vertex " << v;
    }
  }
}

TEST_P(BfsRandomTest, ShortestPathLengthMatchesDistance) {
  const CsrGraph g = make_connected_random(40, 0.1, GetParam());
  const auto dist = bfs_distances(g, 0);
  for (NodeId t = 1; t < g.num_vertices(); t += 5) {
    const auto path = bfs_shortest_path(g, 0, t);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.size() - 1, dist[t]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsRandomTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace bsr::graph
