#include "broker/robust.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "broker/coverage.hpp"
#include "graph/engine.hpp"
#include "graph/rollback_union_find.hpp"
#include "obs/journal.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::FailureGroup;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::graph::RollbackUnionFind;

namespace engine = bsr::graph::engine;

namespace {

constexpr std::uint64_t kNoPairs = std::numeric_limits<std::uint64_t>::max();

inline std::uint64_t choose2(std::uint64_t s) noexcept { return s * (s - 1) / 2; }

/// Enumerates every scenario that excludes exactly `excl` of
/// members[idx..end) on one shared RollbackUnionFind: at each complete
/// scenario the stars of all *surviving* members are united and `visit()`
/// runs against that forest. Shared unite prefixes are done once — the
/// recursion checkpoints before a "keep member" branch and rolls back after,
/// so work is proportional to the DFS tree, not scenarios × |B|.
template <class Visit>
void enumerate_exclusions(const CsrGraph& g, RollbackUnionFind& uf,
                          std::span<const NodeId> members, std::size_t idx,
                          std::size_t excl, const Visit& visit) {
  BSR_DCHECK(members.size() - idx >= excl);
  if (excl == 0) {
    const RollbackUnionFind::Checkpoint mark = uf.checkpoint();
    for (std::size_t i = idx; i < members.size(); ++i) {
      engine::unite_star(g, uf, members[i], engine::AllEdges{});
    }
    visit();
    uf.rollback(mark);
    return;
  }
  if (members.size() - idx == excl) {
    visit();  // everything left is excluded
    return;
  }
  enumerate_exclusions(g, uf, members, idx + 1, excl - 1, visit);
  const RollbackUnionFind::Checkpoint mark = uf.checkpoint();
  engine::unite_star(g, uf, members[idx], engine::AllEdges{});
  enumerate_exclusions(g, uf, members, idx + 1, excl, visit);
  uf.rollback(mark);
}

/// Flat-snapshot candidate sweep over one scenario forest. The root/size
/// refresh and the per-candidate scans are sharded by index range: every
/// entry is computed independently and each candidate's slot is written by
/// exactly one shard, so results are bit-identical at any BSR_THREADS. The
/// stamp-dedup scratch is per shard (find() is const, so concurrent reads
/// of the forest are safe).
class CandidateSweeper {
 public:
  explicit CandidateSweeper(const CsrGraph& g)
      : g_(g), root_of_(g.num_vertices()), size_of_(g.num_vertices()) {
    const std::size_t shards = engine::plan_shards(g.num_vertices());
    stamps_.assign(shards, std::vector<std::uint32_t>(g.num_vertices(), 0));
    epochs_.assign(shards, 0);
  }

  /// For every non-broker w, the connected-pair count of the scenario forest
  /// after uniting w's admitted star. take_min folds into target via min
  /// (scenario sweeps); otherwise overwrites (the no-failure sweep).
  template <class Filter>
  void sweep(const RollbackUnionFind& uf, const std::vector<bool>& is_broker,
             Filter admit, bool take_min, std::vector<std::uint64_t>& target) {
    const NodeId n = g_.num_vertices();
    engine::for_each_shard(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        root_of_[v] = uf.find(static_cast<NodeId>(v));
      }
    });
    for (NodeId v = 0; v < n; ++v) {
      if (root_of_[v] == v) size_of_[v] = uf.root_size(v);
    }
    const std::uint64_t base = uf.connected_pairs();
    engine::for_each_shard(n, [&](std::size_t shard, std::size_t begin,
                                  std::size_t end) {
      std::vector<std::uint32_t>& stamp = stamps_[shard];
      std::uint32_t& epoch = epochs_[shard];
      if (epoch >= std::numeric_limits<std::uint32_t>::max() - n - 1) {
        std::fill(stamp.begin(), stamp.end(), 0u);
        epoch = 0;
      }
      for (std::size_t wi = begin; wi < end; ++wi) {
        const auto w = static_cast<NodeId>(wi);
        if (is_broker[w]) continue;
        ++epoch;
        const NodeId rw = root_of_[w];
        stamp[rw] = epoch;
        std::uint64_t merged = size_of_[rw];
        std::uint64_t unmerged_pairs = choose2(size_of_[rw]);
        const auto nbrs = g_.neighbors(w);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const NodeId v = nbrs[i];
          if (!admit(w, i, v)) continue;
          const NodeId r = root_of_[v];
          if (stamp[r] != epoch) {
            stamp[r] = epoch;
            merged += size_of_[r];
            unmerged_pairs += choose2(size_of_[r]);
          }
        }
        const std::uint64_t after = base - unmerged_pairs + choose2(merged);
        if (take_min) {
          if (after < target[wi]) target[wi] = after;
        } else {
          target[wi] = after;
        }
      }
    });
  }

 private:
  const CsrGraph& g_;
  std::vector<NodeId> root_of_;
  std::vector<std::uint32_t> size_of_;
  std::vector<std::vector<std::uint32_t>> stamps_;
  std::vector<std::uint32_t> epochs_;
};

}  // namespace

RobustResult robust_maxsg(const CsrGraph& g, std::uint32_t k,
                          const RobustOptions& options) {
  BSR_SPAN("broker.robust");
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("robust_maxsg: empty graph");
  if (options.mode == RobustMode::kBrokerFailures && options.redundancy == 0) {
    throw std::invalid_argument("robust_maxsg: redundancy must be >= 1");
  }
  if (options.mode == RobustMode::kFailureGroups && options.groups.empty()) {
    throw std::invalid_argument("robust_maxsg: kFailureGroups needs failure groups");
  }

  RobustResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  const std::uint32_t r = options.redundancy;
  RollbackUnionFind uf(n);
  CandidateSweeper sweeper(g);
  std::optional<FaultPlane> plane;
  if (options.mode == RobustMode::kFailureGroups) plane.emplace(g);

  std::vector<bool> is_broker(n, false);
  std::vector<NodeId> members;
  members.reserve(k);
  std::vector<std::uint64_t> worst(n), full(n);
  std::uint64_t prev_worst = 0;  // adversary's optimum vs the current set
  std::uint64_t prev_full = 0;   // no-failure pairs of the current set

  while (members.size() < k) {
    BSR_COUNT(RobustRounds);
    const std::span<const NodeId> mspan(members);

    // No-failure sweep: pairs(B ∪ {w}) for every candidate — the secondary
    // objective that bootstraps the selection while |B| is still below the
    // redundancy level (where the worst case is identically zero).
    std::uint64_t current_full = 0;
    enumerate_exclusions(g, uf, mspan, 0, 0, [&] {
      BSR_COUNT(RobustScenarios);
      current_full = uf.connected_pairs();
      sweeper.sweep(uf, is_broker, engine::AllEdges{}, false, full);
    });
    BSR_COUNT_N(RobustGainEvals, n - members.size());

    if (options.mode == RobustMode::kBrokerFailures) {
      if (members.size() + 1 <= r) {
        // Any r failures can take down the whole candidate set.
        std::fill(worst.begin(), worst.end(), 0);
      } else {
        std::fill(worst.begin(), worst.end(), kNoPairs);
        // Scenarios not containing the candidate: r failures among B, then
        // the candidate's star joins the survivors.
        enumerate_exclusions(g, uf, mspan, 0, r, [&] {
          BSR_COUNT(RobustScenarios);
          sweeper.sweep(uf, is_broker, engine::AllEdges{}, true, worst);
          BSR_COUNT_N(RobustGainEvals, n - members.size());
        });
        // Scenarios containing the candidate: the candidate itself plus any
        // r-1 members fail, leaving pairs(B \ F') — candidate-independent.
        std::uint64_t worst_without = kNoPairs;
        if (r == 1) {
          worst_without = current_full;
        } else {
          enumerate_exclusions(g, uf, mspan, 0, r - 1, [&] {
            BSR_COUNT(RobustScenarios);
            worst_without = std::min(worst_without, uf.connected_pairs());
          });
        }
        for (NodeId w = 0; w < n; ++w) {
          if (worst[w] > worst_without) worst[w] = worst_without;
        }
      }
    } else {
      std::fill(worst.begin(), worst.end(), kNoPairs);
      const engine::FaultAwareFilter admit{&*plane};
      for (const FailureGroup& group : options.groups) {
        plane->fail_group(group);
        const RollbackUnionFind::Checkpoint mark = uf.checkpoint();
        for (const NodeId m : members) {
          if (plane->vertex_ok(m)) engine::unite_star(g, uf, m, admit);
        }
        BSR_COUNT(RobustScenarios);
        sweeper.sweep(uf, is_broker, admit, true, worst);
        BSR_COUNT_N(RobustGainEvals, n - members.size());
        uf.rollback(mark);
        plane->heal_group(group);
      }
    }

    // Deterministic argmax on (surviving pairs, nominal pairs, lowest id).
    NodeId best = bsr::graph::kUnreachable;
    std::uint64_t best_worst = 0, best_full = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      if (best == bsr::graph::kUnreachable || worst[w] > best_worst ||
          (worst[w] == best_worst && full[w] > best_full)) {
        best = w;
        best_worst = worst[w];
        best_full = full[w];
      }
    }
    if (best == bsr::graph::kUnreachable) break;  // every vertex is a broker
    // No candidate moves either pair objective — further picks are dead
    // weight, so the remaining budget stays unspent.
    if (best_worst == prev_worst && best_full == prev_full) break;

    is_broker[best] = true;
    members.push_back(best);
    result.brokers.add(best);
    result.surviving_curve.push_back(best_worst);
    prev_worst = best_worst;
    prev_full = best_full;
    BSR_EVENT_NOW(SelectionRobustPick, best, best_worst);
  }

  result.surviving_pairs = prev_worst;
  result.nominal_pairs = prev_full;
  result.coverage = coverage(g, result.brokers);
  return result;
}

std::uint64_t worst_case_surviving_pairs(const CsrGraph& g, const BrokerSet& b,
                                         std::uint32_t r) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("worst_case_surviving_pairs: size mismatch");
  }
  if (b.size() <= r) return 0;  // the adversary can fail every broker
  RollbackUnionFind uf(g.num_vertices());
  std::uint64_t worst = kNoPairs;
  enumerate_exclusions(g, uf, b.members(), 0, r, [&] {
    BSR_COUNT(RobustScenarios);
    worst = std::min(worst, uf.connected_pairs());
  });
  return worst;
}

std::uint64_t worst_case_surviving_pairs(const CsrGraph& g, const BrokerSet& b,
                                         std::span<const FailureGroup> groups) {
  if (b.num_vertices() != g.num_vertices()) {
    throw std::invalid_argument("worst_case_surviving_pairs: size mismatch");
  }
  if (groups.empty()) {
    throw std::invalid_argument("worst_case_surviving_pairs: no failure groups");
  }
  FaultPlane plane(g);
  RollbackUnionFind uf(g.num_vertices());
  const engine::FaultAwareFilter admit{&plane};
  std::uint64_t worst = kNoPairs;
  for (const FailureGroup& group : groups) {
    plane.fail_group(group);
    const RollbackUnionFind::Checkpoint mark = uf.checkpoint();
    for (const NodeId m : b.members()) {
      if (plane.vertex_ok(m)) engine::unite_star(g, uf, m, admit);
    }
    BSR_COUNT(RobustScenarios);
    worst = std::min(worst, uf.connected_pairs());
    uf.rollback(mark);
    plane.heal_group(group);
  }
  return worst;
}

}  // namespace bsr::broker
