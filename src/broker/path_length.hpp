// Path-length constraints (Problem 4, §5.2).
//
// A broker selection strategy A is "feasible" when its dominated-path length
// distribution F_{B_A}(l) tracks the free-routing distribution F(l) within ε
// for every l (Eq. 4). This module packages the two CDFs, the ε test, and
// the path-inflation profile Table 4 reports.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "broker/dominated.hpp"
#include "graph/distance_histogram.hpp"

namespace bsr::broker {

struct PathLengthComparison {
  bsr::graph::DistanceCdf free_paths;       // F(l): unrestricted shortest paths
  bsr::graph::DistanceCdf dominated_paths;  // F_B(l): B-dominating paths
  double max_deviation = 0.0;               // max_l |F_B(l) - F(l)|

  /// ε-feasibility per Eq. (4).
  [[nodiscard]] bool feasible(double epsilon) const noexcept {
    return max_deviation <= epsilon;
  }

  /// Path inflation at hop bound l: F(l) - F_B(l) (mass of pairs that lost
  /// their <= l-hop path when restricted to dominating paths).
  [[nodiscard]] double inflation_at(std::uint32_t l) const noexcept {
    return free_paths.at(l) - dominated_paths.at(l);
  }
};

/// Computes both CDFs from the same sampled source set (paired sampling
/// removes sampling noise from the comparison).
[[nodiscard]] PathLengthComparison compare_path_lengths(const bsr::graph::CsrGraph& g,
                                                        const BrokerSet& b,
                                                        bsr::graph::Rng& rng,
                                                        std::size_t num_sources);

/// Same, from an explicit source set — use when several broker sets must be
/// compared against each other (pin the sources, vary only B).
[[nodiscard]] PathLengthComparison compare_path_lengths(
    const bsr::graph::CsrGraph& g, const BrokerSet& b,
    std::span<const bsr::graph::NodeId> sources);

}  // namespace bsr::broker
