// Ablation: correlated link failures — IXP outages and graceful degradation.
//
// The broker-failure ablation kills coalition members; this one kills
// *links*. Damage comes from two sources: correlated IXP outages (one IXP
// going dark drops every membership edge at once) and random cuts of
// dominated links — the broker-incident edges the brokered plane actually
// rides on, which is where a fiber cut hurts the service. We fail a growing
// fraction of these failure groups and ask the operator's questions: how
// does dominated connectivity degrade, which service tier (dominated /
// degraded / free-fallback / unreachable) serves each pair under a bounded
// heal budget, and how much does greedy repair on the damaged graph buy
// back? Emits BENCH_link_failures.json (override with BENCH_LINK_FAILURES_JSON)
// in the unified bsr-bench/1 layout.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "harness.hpp"
#include "broker/dominated.hpp"
#include "broker/maxsg.hpp"
#include "broker/resilience.hpp"
#include "graph/fault_plane.hpp"
#include "graph/sampling.hpp"
#include "sim/router.hpp"

int main() {
  auto ctx = bsr::bench::make_context("Ablation: correlated link failures");
  const auto& g = ctx.topo.graph;
  bsr::bench::Harness harness("ablation_link_failures", ctx);
  const bsr::graph::NodeId num_ixps = ctx.topo.num_ixps;

  const std::uint32_t k = ctx.env.scaled(1000, 10);
  const auto brokers = bsr::broker::maxsg(g, k).brokers;
  std::cout << "broker set: " << brokers.size() << " members, baseline connectivity "
            << bsr::io::format_percent(bsr::broker::saturated_connectivity(g, brokers))
            << "%\n";

  // One failure group per IXP: all membership edges drop together.
  std::vector<bsr::graph::FailureGroup> groups;
  groups.reserve(num_ixps);
  for (bsr::graph::NodeId v = ctx.topo.num_ases; v < ctx.topo.num_vertices(); ++v) {
    groups.push_back(bsr::graph::incident_group(g, v));
  }
  // Plus uncorrelated cuts of half the dominated links: singleton groups over
  // the broker-incident edges the brokered plane depends on.
  bsr::graph::Rng rng(ctx.env.seed + 40);
  {
    std::vector<bsr::graph::Edge> dominated_edges;
    for (const bsr::graph::Edge& e : g.edges()) {
      if (brokers.dominates_edge(e.u, e.v)) dominated_edges.push_back(e);
    }
    const auto cuts = static_cast<bsr::graph::NodeId>(dominated_edges.size() / 2);
    const auto picks = bsr::graph::sample_distinct(
        rng, static_cast<bsr::graph::NodeId>(dominated_edges.size()), cuts);
    for (const bsr::graph::NodeId i : picks) {
      bsr::graph::FailureGroup group;
      group.center = dominated_edges[i].u;
      group.edges.push_back(dominated_edges[i]);
      groups.push_back(group);
    }
    std::cout << "failure groups: " << num_ixps << " IXP outages + " << cuts
              << " dominated-link cuts\n";
  }
  // Deterministic outage order.
  std::vector<bsr::graph::NodeId> order(static_cast<bsr::graph::NodeId>(groups.size()));
  for (bsr::graph::NodeId i = 0; i < order.size(); ++i) order[i] = i;
  bsr::graph::shuffle(rng, order);

  const std::uint32_t repair_budget = ctx.env.scaled(50, 5);
  const std::size_t num_pairs = std::max<std::size_t>(ctx.env.bfs_sources, 200);
  // One expedited repair per route: a tight heal budget, so sustained damage
  // visibly spills into the fallback tier instead of being absorbed.
  const bsr::sim::DegradationPolicy policy{.heal_attempts = 1,
                                           .allow_free_fallback = true};

  bsr::graph::FaultPlane plane(g);
  bsr::sim::Router router(g, brokers, &plane);

  bsr::io::Table table({"failed groups", "failed edges", "connectivity",
                        "dominated", "degraded", "fallback", "unreachable",
                        "repaired"});
  std::vector<double> fallback_shares, unreachable_shares;
  std::vector<double> damaged_curve, repaired_curve;
  std::size_t failed = 0;
  for (const double frac : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto target = static_cast<std::size_t>(frac * static_cast<double>(groups.size()));
    while (failed < target) plane.fail_group(groups[order[failed++]]);

    double damaged = 0.0, repaired = 0.0;
    bsr::sim::TierShares shares;
    auto& point = harness.run(
        "point.f" + bsr::io::format_percent(frac, 0), [&] {
          damaged = bsr::broker::saturated_connectivity(g, brokers, plane);
          const auto repaired_set =
              bsr::broker::repair_brokers(g, brokers, repair_budget, plane);
          repaired = bsr::broker::saturated_connectivity(g, repaired_set, plane);

          bsr::graph::Rng pair_rng(ctx.env.seed + 41);  // same pairs per point
          shares = bsr::sim::sample_tier_shares(router, pair_rng, num_pairs, policy);
        });
    bsr::bench::Harness::metric(point, "damaged_connectivity", damaged);
    bsr::bench::Harness::metric(point, "repaired_connectivity", repaired);
    bsr::bench::Harness::metric(point, "unreachable_share",
                                shares.fraction(shares.unreachable));

    table.row()
        .cell(std::to_string(failed) + " (" + bsr::io::format_percent(frac, 0) + "%)")
        .cell(plane.num_failed_edges())
        .percent(damaged)
        .percent(shares.fraction(shares.dominated))
        .percent(shares.fraction(shares.degraded))
        .percent(shares.fraction(shares.free_fallback))
        .percent(shares.fraction(shares.unreachable))
        .percent(repaired);
    fallback_shares.push_back(shares.fraction(shares.free_fallback));
    unreachable_shares.push_back(shares.fraction(shares.unreachable));
    damaged_curve.push_back(damaged);
    repaired_curve.push_back(repaired);
  }
  table.print(std::cout);

  // Graceful degradation: fallback absorbs the damage before any pair is
  // truly lost — the fallback share must rise while unreachable holds flat.
  bool fallback_rose_first = fallback_shares.back() > fallback_shares.front();
  for (std::size_t i = 0; i + 1 < fallback_shares.size(); ++i) {
    if (unreachable_shares[i + 1] > unreachable_shares[i] + 1e-12 &&
        fallback_shares[i + 1] <= fallback_shares.front() + 1e-12) {
      fallback_rose_first = false;
    }
  }
  bool repair_always_gains = true;
  for (std::size_t i = 0; i < damaged_curve.size(); ++i) {
    if (repaired_curve[i] <= damaged_curve[i]) repair_always_gains = false;
  }
  std::cout << "graceful degradation (fallback rises before unreachable): "
            << (fallback_rose_first ? "yes" : "NO") << "\n";
  std::cout << "repair beats pre-repair connectivity at every sweep point: "
            << (repair_always_gains ? "yes" : "NO") << "\n";
  std::cout << "(takeaway: link damage shaves the brokered plane edge-first; "
               "pairs slide through the degraded tier to the unsupervised "
               "fallback long before becoming unreachable, and damage-aware "
               "greedy repair claws back part of the dominated coverage)\n";

  harness.metric("failure_groups", static_cast<double>(groups.size()));
  harness.metric("repair_budget", static_cast<double>(repair_budget));
  harness.metric("fallback_rose_first", fallback_rose_first ? 1.0 : 0.0);
  harness.metric("repair_always_gains", repair_always_gains ? 1.0 : 0.0);
  harness.write_json_file("BENCH_link_failures.json", "BENCH_LINK_FAILURES_JSON");
  return 0;
}
