// RouteService: construction guards, oracle correctness against the router,
// epoch lifecycle (degrade / patch / rebuild / crash / discard / give-up),
// RebuildScheduler backoff semantics, admission shedding, thread-count
// determinism, and the stale-serving monotonicity harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "broker/broker_set.hpp"
#include "graph/engine.hpp"
#include "graph/fault_plane.hpp"
#include "obs/stats.hpp"
#include "sim/demand.hpp"
#include "sim/route_service.hpp"
#include "sim/router.hpp"
#include "test_util.hpp"

namespace {

using bsr::broker::BrokerSet;
using bsr::graph::CsrGraph;
using bsr::graph::FaultPlane;
using bsr::graph::NodeId;
using bsr::sim::AnswerStatus;
using bsr::sim::AuditOutcome;
using bsr::sim::EpochEventKind;
using bsr::sim::Flow;
using bsr::sim::RebuildInjection;
using bsr::sim::RebuildPolicy;
using bsr::sim::RebuildScheduler;
using bsr::sim::RouteAnswer;
using bsr::sim::RouteService;
using bsr::sim::RouteServiceConfig;
using bsr::test::make_connected_random;
using bsr::test::make_path;
using bsr::test::make_star;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Reference reachability over the usable dominated subgraph: an edge is
/// usable iff it has >= 1 usable-broker endpoint, both endpoints are up and
/// the link is up. Independent of the union-find the service uses.
bool truth_reachable(const CsrGraph& g, const BrokerSet& brokers,
                     const FaultPlane* faults, NodeId src, NodeId dst) {
  const auto usable = [&](NodeId v) {
    return brokers.contains(v) && (faults == nullptr || faults->vertex_ok(v));
  };
  const auto vertex_up = [&](NodeId v) {
    return faults == nullptr || faults->vertex_ok(v);
  };
  if (!vertex_up(src) || !vertex_up(dst)) return false;
  if (src == dst) return true;
  std::vector<bool> seen(g.num_vertices(), false);
  std::queue<NodeId> frontier;
  seen[src] = true;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (seen[v] || !vertex_up(v)) continue;
      if (!usable(u) && !usable(v)) continue;
      if (faults != nullptr && !faults->edge_ok(u, v)) continue;
      if (v == dst) return true;
      seen[v] = true;
      frontier.push(v);
    }
  }
  return false;
}

/// Drives the service's internal event loop to quiescence (or `until`).
void drain(RouteService& service, double until = 1e9) {
  while (service.next_event_time() <= until) {
    service.advance(service.next_event_time());
  }
}

BrokerSet top_degree_brokers(const CsrGraph& g, NodeId k) {
  std::vector<NodeId> order(g.num_vertices());
  for (NodeId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  order.resize(std::min<std::size_t>(k, order.size()));
  return BrokerSet(g.num_vertices(), order);
}

// --- construction guards -----------------------------------------------------

TEST(RouteServiceGuards, MismatchedVertexCountThrows) {
  const CsrGraph g = make_path(6);
  const BrokerSet wrong(4, std::vector<NodeId>{0, 1});
  EXPECT_THROW(RouteService(g, wrong, nullptr), std::invalid_argument);
}

TEST(RouteServiceGuards, EmptyBrokerSetIsWellDefinedNullService) {
  const CsrGraph g = make_path(6);
  const BrokerSet none(6);
  RouteService service(g, none, nullptr);
  EXPECT_TRUE(service.null_epoch());
  EXPECT_EQ(service.usable_broker_count(), 0u);
  const RouteAnswer a = service.query(0, 5, 0.0);
  EXPECT_EQ(a.status, AnswerStatus::kRefused);
  EXPECT_FALSE(a.reachable);
  EXPECT_EQ(a.next_hop, bsr::sim::kNoNextHop);
  EXPECT_TRUE(service.stitch_path(0, 5).empty());
  EXPECT_EQ(service.stats().refused, 1u);
}

TEST(RouteServiceGuards, FullyFailedBrokerSetIsNullService) {
  const CsrGraph g = make_star(8);
  const BrokerSet brokers(8, std::vector<NodeId>{0});
  FaultPlane faults(g);
  faults.fail_vertex(0);
  RouteService service(g, brokers, &faults);
  EXPECT_TRUE(service.null_epoch());
  const RouteAnswer a = service.query(1, 2, 0.0);
  EXPECT_EQ(a.status, AnswerStatus::kRefused);
  EXPECT_FALSE(a.reachable);
}

TEST(RouteServiceGuards, EmptyGraphIsAccepted) {
  const CsrGraph g = make_path(0);
  const BrokerSet none(0);
  RouteService service(g, none, nullptr);
  EXPECT_TRUE(service.null_epoch());
}

// --- oracle correctness ------------------------------------------------------

TEST(RouteServiceOracle, MatchesRouterOnAllPairs) {
  const CsrGraph g = make_connected_random(48, 0.08, 2026);
  const BrokerSet brokers = top_degree_brokers(g, 8);
  RouteService service(g, brokers, nullptr);
  bsr::sim::Router router(g, brokers);
  EXPECT_FALSE(service.null_epoch());

  for (NodeId s = 0; s < g.num_vertices(); ++s) {
    for (NodeId t = 0; t < g.num_vertices(); ++t) {
      const RouteAnswer a = service.query(s, t, 0.0);
      ASSERT_EQ(a.status, AnswerStatus::kFresh);
      const auto route = router.route_dominated(s, t);
      ASSERT_EQ(a.reachable, route.reachable())
          << "pair " << s << "->" << t;
      if (!a.reachable || a.dist_bound == bsr::graph::kUnreachable) continue;
      // The landmark triangle bound is admissible: never below the true
      // dominated distance.
      EXPECT_GE(a.dist_bound, route.hops()) << "pair " << s << "->" << t;
    }
  }
}

TEST(RouteServiceOracle, StitchedPathsAreValidDominatedPaths) {
  const CsrGraph g = make_connected_random(40, 0.1, 7);
  const BrokerSet brokers = top_degree_brokers(g, 6);
  RouteService service(g, brokers, nullptr);

  std::size_t stitched = 0;
  for (NodeId s = 0; s < g.num_vertices(); ++s) {
    for (NodeId t = 0; t < g.num_vertices(); ++t) {
      const RouteAnswer a = service.query(s, t, 0.0);
      const auto path = service.stitch_path(s, t);
      if (!a.reachable || a.dist_bound == bsr::graph::kUnreachable) {
        EXPECT_TRUE(path.empty());
        continue;
      }
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      // The stitched walk realizes the advertised bound exactly.
      EXPECT_EQ(path.size() - 1, a.dist_bound);
      if (s != t) EXPECT_EQ(path[1], a.next_hop);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto nbrs = g.neighbors(path[i]);
        EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), path[i + 1]), nbrs.end())
            << "hop " << path[i] << "->" << path[i + 1] << " not an edge";
        EXPECT_TRUE(brokers.contains(path[i]) || brokers.contains(path[i + 1]))
            << "hop " << path[i] << "->" << path[i + 1] << " undominated";
      }
      ++stitched;
    }
  }
  EXPECT_GT(stitched, 0u);
}

// --- rebuild scheduler -------------------------------------------------------

TEST(RebuildScheduler, BacksOffExponentiallyAndGivesUp) {
  RebuildPolicy policy;
  policy.retry_backoff = 0.5;
  policy.retry_factor = 2.0;
  policy.retry_max = 3.0;
  policy.max_retries = 3;
  RebuildScheduler sched(policy);

  EXPECT_EQ(sched.next_due(), kInf);
  sched.request(10.0);
  EXPECT_DOUBLE_EQ(sched.next_due(), 10.5);
  sched.request(11.0);  // already armed: no-op
  EXPECT_DOUBLE_EQ(sched.next_due(), 10.5);

  ASSERT_TRUE(sched.begin(10.5));
  EXPECT_EQ(sched.next_due(), kInf);
  sched.report(12.5, false);
  EXPECT_DOUBLE_EQ(sched.next_due(), 12.5 + 1.0);  // 0.5 * 2
  ASSERT_TRUE(sched.begin(13.5));
  sched.report(15.5, false);
  EXPECT_DOUBLE_EQ(sched.next_due(), 15.5 + 2.0);  // 0.5 * 2 * 2
  ASSERT_TRUE(sched.begin(17.5));
  sched.report(19.5, false);
  EXPECT_DOUBLE_EQ(sched.next_due(), 19.5 + 3.0);  // capped at retry_max
  ASSERT_TRUE(sched.begin(22.5));
  sched.report(24.5, false);
  EXPECT_EQ(sched.next_due(), kInf);  // max_retries exhausted: parked
  EXPECT_EQ(sched.failures(), 4u);

  sched.request(30.0);  // a new truth event re-arms from scratch
  EXPECT_DOUBLE_EQ(sched.next_due(), 30.5);
  ASSERT_TRUE(sched.begin(30.5));
  sched.report(32.5, true);
  EXPECT_EQ(sched.next_due(), kInf);
  EXPECT_EQ(sched.starts(), 5u);
}

TEST(RebuildScheduler, BudgetParksPermanently) {
  RebuildPolicy policy;
  policy.max_rebuilds = 1;
  RebuildScheduler sched(policy);
  sched.request(0.0);
  ASSERT_TRUE(sched.begin(sched.next_due()));
  sched.report(2.0, false);
  EXPECT_EQ(sched.next_due(), kInf);  // budget spent mid-retry
  sched.request(5.0);                 // exhausted: request is a no-op
  EXPECT_EQ(sched.next_due(), kInf);
  EXPECT_TRUE(sched.exhausted());
}

// --- epoch lifecycle ---------------------------------------------------------

TEST(RouteServiceLifecycle, FaultDegradesThenRebuildRestoresFreshness) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  RouteService service(g, brokers, &faults);
  EXPECT_EQ(service.epoch_id(), 1u);
  EXPECT_EQ(service.query(1, 6, 0.0).status, AnswerStatus::kFresh);

  faults.fail_edge(3, 4);
  service.on_fault(1.0);
  EXPECT_TRUE(service.degraded());
  EXPECT_EQ(service.stale_events(), 1u);
  const RouteAnswer stale = service.query(1, 6, 1.0);
  EXPECT_EQ(stale.status, AnswerStatus::kStaleServed);
  EXPECT_TRUE(stale.reachable);  // the stale epoch still believes the old cut

  drain(service);
  EXPECT_FALSE(service.degraded());
  EXPECT_EQ(service.epoch_id(), 2u);
  const RouteAnswer fresh = service.query(1, 6, 10.0);
  EXPECT_EQ(fresh.status, AnswerStatus::kFresh);
  EXPECT_FALSE(fresh.reachable);  // 3-4 was the only dominated cut edge
  EXPECT_EQ(service.stats().rebuilds_started, 1u);
  EXPECT_EQ(service.stats().max_stale_served, 1u);
}

// Regression: the staleness high-water gauge tracks the *current* degraded
// episode. Activating a rebuilt epoch must clear it, or a long-healed run
// reports the worst staleness it ever saw as if it were still live.
TEST(RouteServiceLifecycle, EpochActivationResetsStaleHighWaterGauge) {
  if (!BSR_STATS_ENABLED) GTEST_SKIP() << "built with BSR_STATS=OFF";
  bsr::obs::reset();
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  RouteService service(g, brokers, &faults);

  faults.fail_edge(3, 4);
  service.on_fault(1.0);
  faults.fail_edge(4, 5);
  service.on_fault(1.1);
  (void)service.query(1, 6, 1.5);  // stale-served at 2 events behind
  EXPECT_EQ(bsr::obs::snapshot().gauge(
                bsr::obs::Gauge::kRouteServiceStaleHighWater),
            2u);

  drain(service);  // rebuild lands, new epoch activates
  EXPECT_FALSE(service.degraded());
  EXPECT_EQ(bsr::obs::snapshot().gauge(
                bsr::obs::Gauge::kRouteServiceStaleHighWater),
            0u);
  // Cross-check against the cumulative stat, which must NOT reset.
  EXPECT_EQ(service.stats().max_stale_served, 2u);
}

TEST(RouteServiceLifecycle, HealOnlyDeltaIsPatchedWithoutRebuild) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  faults.fail_edge(3, 4);
  RouteService service(g, brokers, &faults);  // epoch 1 sees the cut
  EXPECT_FALSE(service.query(1, 6, 0.0).reachable);

  faults.heal_edge(3, 4);
  service.on_heal(1.0);
  EXPECT_FALSE(service.degraded());  // re-stamped fresh by the patch
  EXPECT_EQ(service.epoch_id(), 1u);  // no rebuild happened
  EXPECT_EQ(service.stats().patches, 1u);
  const RouteAnswer a = service.query(1, 6, 1.0);
  EXPECT_EQ(a.status, AnswerStatus::kFresh);
  EXPECT_TRUE(a.reachable);
  EXPECT_EQ(service.next_event_time(), kInf);  // nothing scheduled
}

TEST(RouteServiceLifecycle, CrashedPatchRollsBackAndFallsToRebuild) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  faults.fail_edge(3, 4);
  RebuildInjection injection;
  injection.crash_next_patches = 1;
  RouteService service(g, brokers, &faults, RouteServiceConfig{}, injection);

  faults.heal_edge(3, 4);
  service.on_heal(1.0);
  EXPECT_TRUE(service.degraded());  // patch crashed: still on the cut epoch
  EXPECT_EQ(service.stats().patch_crashes, 1u);
  EXPECT_FALSE(service.query(1, 6, 1.0).reachable);  // rollback kept it intact

  drain(service);
  EXPECT_FALSE(service.degraded());
  EXPECT_EQ(service.epoch_id(), 2u);  // the fallback rebuild
  EXPECT_TRUE(service.query(1, 6, 10.0).reachable);
}

TEST(RouteServiceLifecycle, RebuildCrashesRetryWithBackoffThenSucceed) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  RebuildInjection injection;
  injection.crash_next_rebuilds = 2;
  RouteService service(g, brokers, &faults, RouteServiceConfig{}, injection);

  faults.fail_edge(3, 4);
  service.on_fault(0.0);
  drain(service);
  EXPECT_FALSE(service.degraded());
  EXPECT_EQ(service.stats().rebuild_crashes, 2u);
  EXPECT_EQ(service.stats().rebuilds_started, 3u);
  EXPECT_EQ(service.epoch_id(), 2u);  // crashes never published anything

  // The attempt chain is visible in the transition log: two crashes, then a
  // publish, each with its own attempt id.
  std::vector<EpochEventKind> kinds;
  for (const auto& t : service.transitions()) kinds.push_back(t.kind);
  const std::vector<EpochEventKind> expected{
      EpochEventKind::kPublish,       // initial epoch
      EpochEventKind::kDegrade,       EpochEventKind::kRebuildStart,
      EpochEventKind::kRebuildCrash,  EpochEventKind::kRebuildStart,
      EpochEventKind::kRebuildCrash,  EpochEventKind::kRebuildStart,
      EpochEventKind::kPublish};
  EXPECT_EQ(kinds, expected);
}

TEST(RouteServiceLifecycle, MidBuildTruthChangeDiscardsTheBuild) {
  const CsrGraph g = make_path(10);
  const BrokerSet brokers(10, std::vector<NodeId>{2, 3, 4, 5, 6, 7});
  FaultPlane faults(g);
  RouteService service(g, brokers, &faults);

  faults.fail_edge(3, 4);
  service.on_fault(0.0);
  service.advance(0.5);  // the rebuild starts (completes at 2.5)
  ASSERT_TRUE(service.rebuild_pending());
  faults.fail_edge(5, 6);  // truth moves mid-build
  service.on_fault(1.0);

  drain(service);
  EXPECT_FALSE(service.degraded());
  EXPECT_GE(service.stats().rebuilds_discarded, 1u);
  // The final epoch reflects *both* faults, not the half-truth the first
  // build was computed against.
  EXPECT_FALSE(service.query(1, 8, 10.0).reachable);
  EXPECT_FALSE(service.query(3, 4, 10.0).reachable);
  EXPECT_TRUE(service.query(3, 4, 10.0).status == AnswerStatus::kFresh);
}

TEST(RouteServiceLifecycle, StalenessBoundTripsToRefused) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  RouteServiceConfig config;
  config.max_stale_events = 2;
  config.rebuild.max_rebuilds = 0;  // never rebuild: staleness only grows
  RouteService service(g, brokers, &faults, config);

  faults.fail_edge(2, 3);
  service.on_fault(1.0);
  service.advance(100.0);
  EXPECT_EQ(service.query(1, 6, 100.0).status, AnswerStatus::kStaleServed);
  faults.fail_edge(3, 4);
  service.on_fault(101.0);
  EXPECT_EQ(service.query(1, 6, 101.0).status, AnswerStatus::kStaleServed);
  faults.fail_edge(4, 5);
  service.on_fault(102.0);
  EXPECT_EQ(service.stale_events(), 3u);
  const RouteAnswer refused = service.query(1, 6, 102.0);
  EXPECT_EQ(refused.status, AnswerStatus::kRefused);
  EXPECT_FALSE(refused.reachable);
  EXPECT_EQ(service.stats().max_stale_served, 2u);
}

TEST(RouteServiceLifecycle, HealthViewMaskSuppressesBrokers) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  RouteService service(g, brokers, nullptr);
  ASSERT_TRUE(service.query(1, 6, 0.0).reachable);

  bsr::sim::HealthView view;
  view.version = 1;
  view.routable.assign(8, true);
  view.routable[4] = false;  // detector quarantined broker 4
  service.on_health_view(view, 1.0);
  EXPECT_TRUE(service.degraded());
  drain(service);
  EXPECT_FALSE(service.degraded());
  // Edge 4-5 survives (5 is still a usable broker endpoint) but 4 no longer
  // dominates; the path 1..6 needs every interior hop dominated and 3-4
  // retains broker 3, so the chain actually holds. The suppressed broker
  // still shrinks the landmark pool.
  EXPECT_EQ(service.usable_broker_count(), 3u);
}

// --- admission control -------------------------------------------------------

TEST(RouteServiceAdmission, TokenBucketShedsDeterministically) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  RouteServiceConfig config;
  config.admit_rate = 4.0;  // bucket starts with 4 tokens
  RouteService service(g, brokers, nullptr, config);

  std::vector<Flow> flows(10, Flow{1, 6, 1.0});
  std::vector<RouteAnswer> answers;
  service.serve_batch(flows, 0.0, answers);
  ASSERT_EQ(answers.size(), 10u);
  std::size_t served = 0, shed = 0;
  for (const RouteAnswer& a : answers) {
    if (a.status == AnswerStatus::kShedded) {
      ++shed;
      EXPECT_FALSE(a.reachable);  // shed queries are never evaluated
    } else {
      EXPECT_EQ(a.status, AnswerStatus::kFresh);
      ++served;
    }
  }
  EXPECT_EQ(served, 4u);  // exactly the bucket depth
  EXPECT_EQ(shed, 6u);
  EXPECT_EQ(service.stats().shedded, 6u);

  // The bucket refills with simulated time: one unit at rate 4 admits 4 more.
  service.serve_batch(flows, 1.0, answers);
  std::size_t served2 = 0;
  for (const RouteAnswer& a : answers) {
    served2 += a.status != AnswerStatus::kShedded;
  }
  EXPECT_EQ(served2, 4u);
}

TEST(RouteServiceAdmission, DegradedServiceShedsHarder) {
  const CsrGraph g = make_path(8);
  const BrokerSet brokers(8, std::vector<NodeId>{2, 3, 4, 5});
  FaultPlane faults(g);
  RouteServiceConfig config;
  config.admit_rate = 4.0;
  config.degraded_admit_factor = 0.5;
  config.rebuild.max_rebuilds = 0;
  RouteService service(g, brokers, &faults, config);

  // Drain the initial burst, then compare refill while fresh vs degraded.
  std::vector<Flow> flows(10, Flow{1, 6, 1.0});
  std::vector<RouteAnswer> answers;
  service.serve_batch(flows, 0.0, answers);

  faults.fail_edge(3, 4);
  service.on_fault(0.5);
  service.serve_batch(flows, 1.0, answers);  // 0.5 time at derated rate 2
  std::size_t served = 0;
  for (const RouteAnswer& a : answers) {
    served += a.status != AnswerStatus::kShedded;
  }
  // Refill = 0.5 (fresh window, rate 4 until 0.5... the bucket refills lazily
  // at serve time, entirely under the degraded rate): 1.0 * 4 * 0.5 = 2.
  EXPECT_EQ(served, 2u);
  for (const RouteAnswer& a : answers) {
    if (a.status != AnswerStatus::kShedded) {
      EXPECT_EQ(a.status, AnswerStatus::kStaleServed);
    }
  }
}

// --- determinism -------------------------------------------------------------

TEST(RouteServiceDeterminism, DigestIsBitIdenticalAcrossThreadCounts) {
  const CsrGraph g = make_connected_random(300, 0.02, 99);
  const BrokerSet brokers = top_degree_brokers(g, 24);
  FaultPlane faults(g);
  bsr::sim::DemandConfig demand;
  demand.num_flows = 2000;
  bsr::graph::Rng rng(5);
  const std::vector<Flow> flows = bsr::sim::generate_flows(g, demand, rng);

  const auto run = [&](int threads) {
    bsr::graph::engine::set_num_threads(threads);
    faults.heal_all();
    RouteServiceConfig config;
    config.admit_rate = 500.0;
    RouteService service(g, brokers, &faults, config);
    std::vector<RouteAnswer> answers;
    std::vector<RouteAnswer> all;
    service.serve_batch(flows, 0.0, answers);
    all.insert(all.end(), answers.begin(), answers.end());
    faults.fail_vertex(brokers.members()[0]);
    service.on_fault(1.0);
    service.serve_batch(flows, 1.5, answers);  // stale epoch
    all.insert(all.end(), answers.begin(), answers.end());
    drain(service);
    service.serve_batch(flows, 20.0, answers);  // rebuilt epoch
    all.insert(all.end(), answers.begin(), answers.end());
    return bsr::sim::answer_digest(all);
  };

  const std::uint64_t d1 = run(1);
  const std::uint64_t d4 = run(4);
  bsr::graph::engine::set_num_threads(0);
  EXPECT_EQ(d1, d4);
}

// --- stale-serving monotonicity ----------------------------------------------

// Misrouting exposure is non-increasing in the rebuild budget: with budget b
// and b+1 the service behaves identically up to the (b+1)-th rebuild start
// (the scheduler's decision sequence is a prefix), after which the larger
// budget serves answers at least as fresh. Mirrors the health probe-interval
// monotonicity harness: asserted over a deterministic churn schedule.
TEST(RouteServiceMonotonicity, MisroutingExposureNonIncreasingInRebuildBudget) {
  const CsrGraph g = make_connected_random(120, 0.04, 314);
  const BrokerSet brokers = top_degree_brokers(g, 12);
  FaultPlane faults(g);
  bsr::sim::DemandConfig demand;
  demand.num_flows = 400;
  bsr::graph::Rng flow_rng(11);
  const std::vector<Flow> flows = bsr::sim::generate_flows(g, demand, flow_rng);

  // Deterministic churn burst: fail four brokers early, heal two later, then
  // a long quiet tail where richer budgets converge back to fresh.
  struct ChurnEvent {
    double time;
    NodeId vertex;
    bool fail;
  };
  const std::vector<ChurnEvent> schedule{
      {1.0, brokers.members()[0], true},  {2.0, brokers.members()[3], true},
      {3.0, brokers.members()[5], true},  {4.0, brokers.members()[7], true},
      {30.0, brokers.members()[0], false}, {31.0, brokers.members()[3], false},
  };
  const std::vector<double> query_times{0.5, 2.5, 4.5, 8.0, 16.0, 32.0, 64.0};

  const auto exposure = [&](std::uint32_t budget) {
    faults.heal_all();
    RouteServiceConfig config;
    config.max_stale_events = 100;  // serve stale; let the audit judge it
    config.rebuild.max_rebuilds = budget;
    RouteService service(g, brokers, &faults, config);
    std::size_t misrouted = 0;
    std::size_t event_idx = 0;
    std::vector<RouteAnswer> answers;
    for (const double now : query_times) {
      while (event_idx < schedule.size() && schedule[event_idx].time <= now) {
        const ChurnEvent& e = schedule[event_idx++];
        service.advance(e.time);
        if (e.fail) {
          faults.fail_vertex(e.vertex);
          service.on_fault(e.time);
        } else {
          faults.heal_vertex(e.vertex);
          service.on_heal(e.time);
        }
      }
      service.advance(now);
      service.serve_batch(flows, now, answers);
      for (std::size_t i = 0; i < flows.size(); ++i) {
        const bool truth = truth_reachable(g, brokers, &faults, flows[i].src,
                                           flows[i].dst);
        if (bsr::sim::audit_answer(answers[i], truth) ==
            AuditOutcome::kMisrouted) {
          ++misrouted;
        }
        // The hard robustness invariant: fresh answers are never wrong.
        if (answers[i].status == AnswerStatus::kFresh) {
          EXPECT_EQ(answers[i].reachable, truth)
              << "fresh disagreement " << flows[i].src << "->" << flows[i].dst;
        }
      }
    }
    return misrouted;
  };

  const std::size_t base = exposure(0);
  std::size_t prev = base;
  std::size_t last = base;
  for (const std::uint32_t budget : {1u, 2u, 4u, 8u}) {
    const std::size_t e = exposure(budget);
    EXPECT_LE(e, prev) << "budget " << budget << " increased exposure";
    prev = e;
    last = e;
  }
  // Some misrouting is unavoidable while the first rebuild is in flight, so
  // the floor is not zero — but a rich budget must beat no budget at all.
  EXPECT_LT(last, base);
}

}  // namespace
