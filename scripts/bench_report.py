#!/usr/bin/env python3
"""Aggregate bsr-bench/1 suite files into one markdown trend table.

Every bench binary (bench/perf_*) writes a BENCH_<suite>.json in the shared
bsr-bench/1 schema (see bench/harness.hpp). CI uploads those as artifacts,
but eyeballing N separate JSON files across commits is hopeless — this script
folds them into a single markdown report: one summary row per suite (scale,
seed, threads, peak RSS when recorded, total deterministic work units) and
one detail row per run (wall ms, ms/rep, work units, and the run's largest
counters). Committing or uploading the report alongside the raw JSON gives a
diffable trend line: wall-ms columns move with hardware noise, work-unit
columns only move when the algorithms change.

Inputs are treated as best-effort: a missing file, truncated JSON (a bench
binary killed mid-write), or a malformed field produces a stderr warning and
a skipped file or placeholder cell, never a traceback — CI aggregates
whatever artifacts the matrix produced, including partial ones.

Usage: bench_report.py [--out report.md] BENCH_a.json [BENCH_b.json ...]
Exits 1 if no input parses as bsr-bench/1 (so CI fails loudly when the
bench step silently produced nothing), 2 on usage errors.
"""

import argparse
import json
import sys

# Counters shown per run, capped so the table stays readable.
MAX_COUNTERS_PER_RUN = 3


def load_suite(path):
    """Returns the parsed suite dict, or None (with a stderr note) if the
    file is unreadable, not JSON, or not a bsr-bench/1 object."""
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_report: skipping {path}: {err}", file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"bench_report: skipping {path}: top level is "
              f"{type(data).__name__}, expected an object", file=sys.stderr)
        return None
    if data.get("bench_schema") != "bsr-bench/1":
        print(f"bench_report: skipping {path}: bench_schema is "
              f"{data.get('bench_schema')!r}, expected 'bsr-bench/1'",
              file=sys.stderr)
        return None
    data["_path"] = path
    return data


def as_number(value, path, what):
    """Returns value as a number, or None (with a stderr warning) when a
    field that should be numeric isn't — partial artifacts stay reportable."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return value
    if value is not None:
        print(f"bench_report: {path}: ignoring non-numeric {what}: "
              f"{value!r}", file=sys.stderr)
    return None


def runs_of(suite):
    runs = suite.get("runs", [])
    if not isinstance(runs, list):
        print(f"bench_report: {suite['_path']}: 'runs' is not a list",
              file=sys.stderr)
        return []
    return [r for r in runs if isinstance(r, dict)]


def headline_counters(run, path):
    raw = run.get("counters", {})
    if not isinstance(raw, dict):
        return "—"
    counters = [(name, value) for name, value in raw.items()
                if as_number(value, path, f"counter {name}") is not None]
    counters.sort(key=lambda kv: (-kv[1], kv[0]))
    shown = ", ".join(f"{name}={value:,}"
                      for name, value in counters[:MAX_COUNTERS_PER_RUN])
    if len(counters) > MAX_COUNTERS_PER_RUN:
        shown += f", +{len(counters) - MAX_COUNTERS_PER_RUN} more"
    return shown or "—"


def format_rss(rss_bytes):
    if rss_bytes is None:
        return "—"
    return f"{rss_bytes / (1024.0 * 1024.0):,.1f}"


def headline_quantiles(run, path):
    """p50/p90/p99 cells from the run's largest quantile sketch (the one that
    saw the most observations — the headline distribution). Runs without
    sketches (older artifacts, non-serving benches) render as em-dashes."""
    raw = run.get("sketches", {})
    if not isinstance(raw, dict) or not raw:
        return ("—", "—", "—")
    best = None
    best_count = -1
    for name, sketch in raw.items():
        if not isinstance(sketch, dict):
            continue
        count = as_number(sketch.get("count"), path, f"sketch {name} count")
        if count is not None and count > best_count:
            best, best_count = sketch, count
    if best is None:
        return ("—", "—", "—")
    cells = []
    for q in ("p50", "p90", "p99"):
        value = as_number(best.get(q), path, f"sketch {q}")
        cells.append(f"{value:,}" if value is not None else "—")
    return tuple(cells)


EPISODE_PHASES = ("detect", "react", "queue", "exec", "drain")


def episode_phase_line(suite, path):
    """One-line critical-path decomposition for suites whose runs fed the
    obs.episode.* phase sketches (see src/obs/episode.hpp); None when no run
    carries all five phase slots."""
    for r in runs_of(suite):
        sketches = r.get("sketches", {})
        if not isinstance(sketches, dict):
            continue
        cells = []
        episodes = None
        for phase in EPISODE_PHASES:
            sketch = sketches.get(f"obs.episode.{phase}_ms")
            if not isinstance(sketch, dict):
                break
            p50 = as_number(sketch.get("p50"), path, f"episode {phase} p50")
            count = as_number(sketch.get("count"), path,
                              f"episode {phase} count")
            cells.append(f"{phase} {p50:,}" if p50 is not None
                         else f"{phase} —")
            if episodes is None and count is not None:
                episodes = int(count)
        else:
            return (f"Episode critical path (p50 ms/phase over "
                    f"{episodes if episodes is not None else 0} closed "
                    f"episode(s)): " + ", ".join(cells))
    return None


def render(suites):
    lines = ["# Bench trend report", ""]
    lines.append("| suite | scale | seed | threads | stats | runs | "
                 "peak RSS (MiB) | total work units |")
    lines.append("|---|---:|---:|---:|---|---:|---:|---:|")
    for s in suites:
        path = s["_path"]
        runs = runs_of(s)
        total = as_number(s.get("total_work_units"), path, "total_work_units")
        if total is None:
            total = sum(as_number(r.get("work_units", 0), path,
                                  "work_units") or 0 for r in runs)
        rss = as_number(s.get("peak_rss_bytes"), path, "peak_rss_bytes")
        lines.append(
            f"| {s.get('suite', '?')} | {s.get('scale', '?')} "
            f"| {s.get('seed', '?')} | {s.get('threads', '?')} "
            f"| {'on' if s.get('stats_enabled') else 'off'} "
            f"| {len(runs)} | {format_rss(rss)} | {total:,} |")
    for s in suites:
        path = s["_path"]
        lines.append("")
        lines.append(f"## {s.get('suite', '?')} ({path})")
        lines.append("")
        metrics = s.get("metrics", {})
        if isinstance(metrics, dict) and metrics:
            shown = ", ".join(
                f"{k}={v:g}" for k, v in sorted(metrics.items())
                if as_number(v, path, f"metric {k}") is not None)
            if shown:
                lines.append(f"Suite metrics: {shown}")
                lines.append("")
        episode_line = episode_phase_line(s, path)
        if episode_line is not None:
            lines.append(episode_line)
            lines.append("")
        lines.append("| run | reps | wall ms | ms/rep | work units | "
                     "p50 | p90 | p99 | top counters |")
        lines.append("|---|---:|---:|---:|---:|---:|---:|---:|---|")
        for r in runs_of(s):
            reps = as_number(r.get("repetitions", 1), path, "repetitions") or 1
            wall = as_number(r.get("wall_ms", 0.0), path, "wall_ms")
            work = as_number(r.get("work_units", 0), path, "work_units")
            wall_cell = f"{wall:.3f}" if wall is not None else "—"
            per_rep = f"{wall / reps:.3f}" if wall is not None else "—"
            work_cell = f"{work:,}" if work is not None else "—"
            p50, p90, p99 = headline_quantiles(r, path)
            lines.append(
                f"| {r.get('name', '?')} | {reps} | {wall_cell} "
                f"| {per_rep} | {work_cell} | {p50} | {p90} | {p99} "
                f"| {headline_counters(r, path)} |")
    lines.append("")
    lines.append("Work-unit and p50/p90/p99 columns are deterministic "
                 "(seed + scale only; quantiles come from the run's largest "
                 "sketch, in virtual ticks); wall-ms and peak-RSS columns "
                 "carry hardware noise. A deterministic change without a "
                 "matching code change is drift — see "
                 "scripts/check_obs_drift.py.")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="bench_report.py",
        description="Aggregate bsr-bench/1 JSON files into a markdown "
                    "trend table.")
    parser.add_argument("inputs", nargs="+", metavar="BENCH.json")
    parser.add_argument("--out", metavar="report.md",
                        help="write the report here instead of stdout")
    args = parser.parse_args()

    suites = [s for s in map(load_suite, args.inputs) if s is not None]
    if not suites:
        print("bench_report: no valid bsr-bench/1 inputs", file=sys.stderr)
        return 1
    suites.sort(key=lambda s: (s.get("suite", ""), s["_path"]))

    report = render(suites)
    if args.out:
        try:
            with open(args.out, "w") as f:
                f.write(report)
        except OSError as err:
            print(f"bench_report: cannot write {args.out}: {err}",
                  file=sys.stderr)
            return 1
        print(f"bench_report: wrote {args.out} "
              f"({len(suites)} suite(s), "
              f"{sum(len(runs_of(s)) for s in suites)} run(s))")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
