// BrokerSet — the selected set B of ASes/IXPs acting as routing brokers.
//
// Stored as both a membership bitmap (O(1) queries during BFS edge filtering)
// and an ordered member list (selection order matters for Table 5 rankings
// and prefix evaluations like Fig. 2b's k sweeps).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {
class Renumbering;
}  // namespace bsr::graph

namespace bsr::broker {

class BrokerSet {
 public:
  BrokerSet() = default;

  /// Empty set over a graph of `num_vertices` vertices.
  explicit BrokerSet(bsr::graph::NodeId num_vertices) : mask_(num_vertices, false) {}

  /// From an explicit member list (selection order preserved).
  /// Throws std::out_of_range / std::invalid_argument on bad or duplicate ids.
  BrokerSet(bsr::graph::NodeId num_vertices,
            std::span<const bsr::graph::NodeId> members);

  [[nodiscard]] bsr::graph::NodeId num_vertices() const noexcept {
    return static_cast<bsr::graph::NodeId>(mask_.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  [[nodiscard]] bool contains(bsr::graph::NodeId v) const noexcept {
    return v < mask_.size() && mask_[v];
  }

  /// Members in selection order.
  [[nodiscard]] std::span<const bsr::graph::NodeId> members() const noexcept {
    return members_;
  }

  /// Adds a broker; returns false if already present. Throws std::out_of_range.
  bool add(bsr::graph::NodeId v);

  /// First `k` members (selection-order prefix) as a new BrokerSet.
  [[nodiscard]] BrokerSet prefix(std::size_t k) const;

  /// Set union (selection order: this set's members then other's new ones).
  [[nodiscard]] BrokerSet unite(const BrokerSet& other) const;

  /// True iff edge (u, v) is dominated by this set (>= 1 endpoint in B).
  [[nodiscard]] bool dominates_edge(bsr::graph::NodeId u,
                                    bsr::graph::NodeId v) const noexcept {
    return contains(u) || contains(v);
  }

  /// Membership bitmap (size num_vertices).
  [[nodiscard]] const std::vector<bool>& mask() const noexcept { return mask_; }

 private:
  std::vector<bool> mask_;
  std::vector<bsr::graph::NodeId> members_;
};

/// `b` with every member translated into the renumbered id space (selection
/// order preserved). Throws std::invalid_argument on a size mismatch.
[[nodiscard]] BrokerSet renumber_to_new(const bsr::graph::Renumbering& ren,
                                        const BrokerSet& b);

/// Inverse of renumber_to_new: members back in the original id space.
[[nodiscard]] BrokerSet renumber_to_old(const bsr::graph::Renumbering& ren,
                                        const BrokerSet& b);

}  // namespace bsr::broker
