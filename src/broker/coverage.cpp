#include "broker/coverage.hpp"

#include "graph/check.hpp"
#include "graph/engine.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;

std::uint32_t coverage(const CsrGraph& g, const BrokerSet& b) {
  BSR_DCHECK(b.num_vertices() == g.num_vertices());
  // The thread-local workspace's mark domain replaces a per-call
  // vector<bool> allocation — coverage() sits inside greedy inner loops.
  auto& ws = bsr::graph::engine::tls_workspace();
  ws.begin_marks(g.num_vertices());
  std::uint32_t count = 0;
  for (const NodeId v : b.members()) {
    if (ws.mark(v)) ++count;
    for (const NodeId w : g.neighbors(v)) {
      if (ws.mark(w)) ++count;
    }
  }
  return count;
}

CoverageTracker::CoverageTracker(const CsrGraph& g)
    : graph_(&g),
      brokers_(g.num_vertices(), false),
      covered_(g.num_vertices(), false) {}

std::uint32_t CoverageTracker::marginal_gain(NodeId v) const {
  BSR_DCHECK(v < graph_->num_vertices());
  std::uint32_t gain = covered_[v] ? 0 : 1;
  for (const NodeId w : graph_->neighbors(v)) {
    if (!covered_[w]) ++gain;
  }
  return gain;
}

std::uint32_t CoverageTracker::add(NodeId v) {
  BSR_DCHECK(v < graph_->num_vertices());
  if (brokers_[v]) return 0;
  brokers_[v] = true;
  std::uint32_t gain = 0;
  const auto mark = [&](NodeId w) {
    if (!covered_[w]) {
      covered_[w] = true;
      ++gain;
    }
  };
  mark(v);
  for (const NodeId w : graph_->neighbors(v)) mark(w);
  covered_count_ += gain;
  return gain;
}

}  // namespace bsr::broker
