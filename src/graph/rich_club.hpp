// Rich-club coefficient — do the hubs form a club?
//
// φ(k) = fraction of possible edges present among vertices of degree > k.
// The measured Internet's transit core is a strong rich club (tier-1s peer
// in a near-clique); the generator must reproduce that for broker backbones
// to be realistic (it is why the MaxSG backbone is internally connected and
// broker-only routing hits ~100 % in Fig. 5a).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace bsr::graph {

/// φ(k) for one degree threshold; 0 if fewer than 2 qualifying vertices.
[[nodiscard]] double rich_club_coefficient(const CsrGraph& g, std::uint32_t k);

/// φ over a list of thresholds (single pass over edges per call).
[[nodiscard]] std::vector<double> rich_club_profile(
    const CsrGraph& g, const std::vector<std::uint32_t>& thresholds);

}  // namespace bsr::graph
