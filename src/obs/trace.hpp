// RAII span tracing over the counter registry.
//
// BSR_SPAN("layer.phase") opens a scope in the calling thread's trace tree;
// closing it (normal exit, early return, or exception unwind — the guard is
// RAII, so nesting is always well-formed) records wall time *and* the delta
// of every counter that moved while the span was open. Wall time answers
// "where did the seconds go" on this machine; the counter deltas are the
// deterministic work-unit dimension that makes two traces of the same run
// comparable across machines, compilers, and thread counts.
//
// Tracing is a runtime switch (set_tracing) on top of the compile-time
// BSR_STATS gate: counters are always cheap enough to leave on, but spans
// snapshot the whole counter block on entry, so they only record when a
// harness (bench, brokerctl stats) opts in. With tracing off a BSR_SPAN site
// costs one predictable-branch bool load; in a BSR_STATS=OFF build it costs
// nothing at all.
//
// Span records are per-thread and drained per-thread (drain_trace). The
// bench harness and brokerctl only trace the main thread; engine worker
// shards never open spans.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/stats.hpp"

namespace bsr::obs {

/// One closed span. Records appear in *open* (preorder) order, so a parent
/// always precedes its children and `parent` indexes into the same vector.
struct SpanRecord {
  const char* name = nullptr;
  std::int32_t parent = -1;  // index of enclosing span, -1 for roots
  std::uint32_t depth = 0;
  std::uint64_t start_ns = 0;     // since this thread's tracer epoch
  std::uint64_t duration_ns = 0;  // 0 until the span closes
  std::uint64_t work_units = 0;   // work-counter delta, children included
  /// Every counter that moved while the span was open (children included),
  /// in registry slot order.
  std::vector<std::pair<Counter, std::uint64_t>> counter_deltas;
};

/// Process-wide tracing switch; spans record only while on. Default off.
void set_tracing(bool on) noexcept;
[[nodiscard]] bool tracing_enabled() noexcept;

/// Moves the calling thread's closed spans out (and clears them). Call with
/// no spans open — open spans would be dropped with zero duration.
[[nodiscard]] std::vector<SpanRecord> drain_trace();

/// Discards the calling thread's recorded spans.
void clear_trace() noexcept;

/// RAII span guard; use through BSR_SPAN so OFF builds compile it away.
class Span {
 public:
  explicit Span(const char* span_name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::int32_t index_ = -1;  // -1: tracing was off at entry; record nothing
  std::array<std::uint64_t, kNumCounters> entry_counters_{};
};

}  // namespace bsr::obs

#if BSR_STATS_ENABLED
#define BSR_OBS_SPAN_CAT2(a, b) a##b
#define BSR_OBS_SPAN_CAT(a, b) BSR_OBS_SPAN_CAT2(a, b)
#define BSR_SPAN(span_name) \
  ::bsr::obs::Span BSR_OBS_SPAN_CAT(bsr_obs_span_, __LINE__)(span_name)
#else
#define BSR_SPAN(span_name) \
  do {                      \
  } while (false)
#endif
