#include "sim/latency.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "graph/dijkstra.hpp"

namespace bsr::sim {

using bsr::graph::NodeId;

namespace {

int tier_rank(const topology::InternetTopology& topo, NodeId v) {
  if (topo.is_ixp(v)) return 1;  // IXP fabrics sit in the core
  switch (topo.meta[v].tier) {
    case topology::Tier::kTier1: return 1;
    case topology::Tier::kTier2: return 2;
    case topology::Tier::kTier3: return 3;
    default: return 4;
  }
}

}  // namespace

LatencyModel::LatencyModel(const topology::InternetTopology& topo,
                           const LatencyModelConfig& config, bsr::graph::Rng& rng) {
  if (config.jitter < 0.0) {
    throw std::invalid_argument("LatencyModel: negative jitter");
  }
  const auto& g = topo.graph;
  const NodeId n = g.num_vertices();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + g.degree(v);
  adjacency_.reserve(offsets_.back());
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    adjacency_.insert(adjacency_.end(), nbrs.begin(), nbrs.end());
  }
  latency_by_slot_.assign(offsets_.back(), 0.0);

  // One draw per undirected edge, mirrored to both slots for symmetry.
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u > v) continue;
      const int rank = std::min(tier_rank(topo, u), tier_rank(topo, v));
      double base = config.edge_base_ms;
      if (rank <= 2) base = config.core_base_ms;
      else if (rank == 3) base = config.transit_base_ms;
      const double value = base * (1.0 + config.jitter * rng.uniform01());
      latency_by_slot_[slot(u, v)] = value;
      latency_by_slot_[slot(v, u)] = value;
    }
  }
}

std::size_t LatencyModel::slot(NodeId u, NodeId v) const {
  const auto begin = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto end = adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  const auto it = std::lower_bound(begin, end, v);
  assert(it != end && *it == v);
  return static_cast<std::size_t>(it - adjacency_.begin());
}

double LatencyModel::latency(NodeId u, NodeId v) const {
  return latency_by_slot_[slot(u, v)];
}

double LatencyModel::path_latency(std::span<const NodeId> path) const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    total += latency(path[i], path[i + 1]);
  }
  return total;
}

LatencyRoute route_min_latency(const bsr::graph::CsrGraph& g, const LatencyModel& model,
                               NodeId src, NodeId dst,
                               const bsr::broker::BrokerSet* brokers) {
  LatencyRoute route;
  if (src >= g.num_vertices() || dst >= g.num_vertices()) return route;
  // Inadmissible edges get infinite weight — Dijkstra will never relax them
  // into a finite-distance path.
  const auto weight = [&](NodeId u, NodeId v) {
    if (brokers != nullptr && !brokers->dominates_edge(u, v)) {
      return bsr::graph::kInfDistance;
    }
    return model.latency(u, v);
  };
  const auto result = bsr::graph::dijkstra(g, src, weight);
  if (result.distance[dst] == bsr::graph::kInfDistance) return route;
  route.path = bsr::graph::extract_path(result, src, dst);
  route.latency_ms = result.distance[dst];
  return route;
}

}  // namespace bsr::sim
