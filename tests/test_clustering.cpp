#include "graph/clustering.hpp"

#include <gtest/gtest.h>

#include "graph/graph_builder.hpp"
#include "test_util.hpp"
#include "topology/er.hpp"
#include "topology/ws.hpp"

namespace bsr::graph {
namespace {

using bsr::test::make_complete;
using bsr::test::make_cycle;
using bsr::test::make_path;
using bsr::test::make_random;
using bsr::test::make_star;

TEST(Clustering, CompleteGraphIsOne) {
  const CsrGraph g = make_complete(7);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
  EXPECT_EQ(triangle_count(g), 35u);  // C(7,3)
}

TEST(Clustering, TreesAreZero) {
  EXPECT_DOUBLE_EQ(average_clustering(make_star(10)), 0.0);
  EXPECT_DOUBLE_EQ(average_clustering(make_path(10)), 0.0);
  EXPECT_EQ(triangle_count(make_star(10)), 0u);
}

TEST(Clustering, SingleTriangle) {
  const CsrGraph g = make_cycle(3);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
  EXPECT_EQ(triangle_count(g), 1u);
}

TEST(Clustering, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 2-3.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  const CsrGraph g = b.build();
  const auto local = local_clustering(g);
  EXPECT_DOUBLE_EQ(local[0], 1.0);
  EXPECT_DOUBLE_EQ(local[1], 1.0);
  EXPECT_DOUBLE_EQ(local[2], 1.0 / 3.0);  // one of three neighbor pairs closed
  EXPECT_DOUBLE_EQ(local[3], 0.0);
  EXPECT_EQ(triangle_count(g), 1u);
}

TEST(Clustering, EmptyGraph) {
  EXPECT_DOUBLE_EQ(average_clustering(CsrGraph()), 0.0);
}

TEST(Clustering, SampledMatchesExactWhenOversampled) {
  const CsrGraph g = make_random(60, 0.1, 3);
  Rng rng(4);
  EXPECT_DOUBLE_EQ(average_clustering_sampled(g, rng, 1000),
                   average_clustering(g));
}

TEST(Clustering, SampledApproximates) {
  const CsrGraph g = make_random(300, 0.05, 5);
  Rng rng(6);
  const double exact = average_clustering(g);
  const double sampled = average_clustering_sampled(g, rng, 150);
  EXPECT_NEAR(sampled, exact, 0.05);
}

TEST(Clustering, WsBeatsErAtEqualDensity) {
  // The small-world signature the Table 3 topologies rely on.
  const auto ws = bsr::topology::make_ws(400, 6, 0.1, 7);
  const auto er = bsr::topology::make_er(400, ws.num_edges(), 8);
  EXPECT_GT(average_clustering(ws), 3.0 * average_clustering(er));
}

}  // namespace
}  // namespace bsr::graph
