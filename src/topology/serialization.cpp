#include "topology/serialization.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "graph/graph_builder.hpp"

namespace bsr::topology {

using bsr::graph::Edge;
using bsr::graph::NodeId;

namespace {

constexpr const char* kMagic = "brokerset-topology v1";

/// Error with line number and a (truncated) snippet of the offending line,
/// so a corrupt multi-megabyte file points straight at the bad record.
[[noreturn]] void fail(std::size_t line_no, const std::string& what,
                       const std::string& line_text = {}) {
  std::string msg =
      "load_topology: line " + std::to_string(line_no) + ": " + what;
  if (!line_text.empty()) {
    constexpr std::size_t kSnippet = 60;
    msg += " [\"" + line_text.substr(0, kSnippet) +
           (line_text.size() > kSnippet ? "...\"]" : "\"]");
  }
  throw std::runtime_error(msg);
}

/// True iff nothing but whitespace remains on the line.
bool at_end(std::istringstream& ls) {
  std::string extra;
  return !(ls >> extra);
}

/// Range-checks a signed parse result into NodeId space. Parsing through
/// long long (instead of straight into an unsigned) is what rejects
/// negative inputs — istream happily wraps "-1" into 4294967295u.
bool fits_node_id(long long value) {
  return value >= 0 &&
         value <= static_cast<long long>(std::numeric_limits<NodeId>::max());
}

}  // namespace

void save_topology(std::ostream& os, const InternetTopology& topo) {
  os << kMagic << '\n';
  os << "counts " << topo.num_ases << ' ' << topo.num_ixps << '\n';
  for (NodeId v = 0; v < topo.num_vertices(); ++v) {
    os << "node " << v << ' ' << static_cast<int>(topo.meta[v].type) << ' '
       << static_cast<int>(topo.meta[v].tier) << '\n';
  }
  for (NodeId u = 0; u < topo.num_vertices(); ++u) {
    for (const NodeId v : topo.graph.neighbors(u)) {
      if (u >= v) continue;
      os << "edge " << u << ' ' << v << ' '
         << static_cast<int>(topo.relations.rel_canonical(u, v)) << '\n';
    }
  }
}

void save_topology_file(const std::string& path, const InternetTopology& topo) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_topology_file: cannot open " + path);
  save_topology(out, topo);
  if (!out) throw std::runtime_error("save_topology_file: write failed for " + path);
}

InternetTopology load_topology(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  };

  if (!next_line()) fail(line_no, "empty input: missing magic header");
  if (line != kMagic) {
    fail(line_no, std::string("bad magic header (expected \"") + kMagic + "\")",
         line);
  }

  if (!next_line()) fail(line_no, "truncated file: missing counts line");
  long long num_ases = 0, num_ixps = 0;
  {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> num_ases >> num_ixps) || tag != "counts") {
      fail(line_no, "bad counts line (expected \"counts <ases> <ixps>\")", line);
    }
    if (!at_end(ls)) fail(line_no, "trailing tokens after counts", line);
    if (!fits_node_id(num_ases) || !fits_node_id(num_ixps) ||
        !fits_node_id(num_ases + num_ixps)) {
      fail(line_no, "counts negative or overflow vertex id space", line);
    }
  }
  const NodeId n = static_cast<NodeId>(num_ases + num_ixps);

  std::vector<NodeMeta> meta(n);
  std::vector<bool> seen_node(n, false);
  for (NodeId i = 0; i < n; ++i) {
    if (!next_line()) {
      fail(line_no, "truncated file: got " + std::to_string(i) +
                        " node lines, counts promised " + std::to_string(n));
    }
    std::istringstream ls(line);
    std::string tag;
    long long id = 0, type = 0, tier = 0;
    if (!(ls >> tag >> id >> type >> tier) || tag != "node") {
      fail(line_no, "bad node line (expected \"node <id> <type> <tier>\"; " +
                        std::to_string(n - i) + " node lines still owed)",
           line);
    }
    if (!at_end(ls)) fail(line_no, "trailing tokens after node", line);
    if (!fits_node_id(id) || id >= n) fail(line_no, "node id out of range", line);
    if (type < 0 || type > 3) fail(line_no, "bad node type", line);
    if (tier < 0 || tier > 4) fail(line_no, "bad tier", line);
    if (seen_node[static_cast<NodeId>(id)]) {
      fail(line_no, "duplicate node id", line);
    }
    seen_node[static_cast<NodeId>(id)] = true;
    meta[static_cast<NodeId>(id)] =
        NodeMeta{static_cast<NodeType>(type), static_cast<Tier>(tier)};
  }

  bsr::graph::GraphBuilder builder(n);
  std::vector<Edge> edges;
  std::vector<EdgeRel> rels;
  while (next_line()) {
    std::istringstream ls(line);
    std::string tag;
    long long u = 0, v = 0, rel = 0;
    if (!(ls >> tag >> u >> v >> rel) || tag != "edge") {
      fail(line_no, "bad edge line (expected \"edge <u> <v> <rel>\")", line);
    }
    if (!at_end(ls)) fail(line_no, "trailing tokens after edge", line);
    if (!fits_node_id(u) || !fits_node_id(v) || u >= v || v >= n) {
      fail(line_no, "edge ids invalid (need 0 <= u < v < n)", line);
    }
    if (rel < 0 || rel > 2) fail(line_no, "bad relationship", line);
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    edges.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
    rels.push_back(static_cast<EdgeRel>(rel));
  }
  if (is.bad()) fail(line_no, "I/O error while reading edge section");

  InternetTopology topo;
  topo.graph = builder.build();
  if (topo.graph.num_edges() != edges.size()) {
    fail(line_no, "duplicate edges in input");
  }
  topo.meta = std::move(meta);
  topo.num_ases = num_ases;
  topo.num_ixps = num_ixps;
  // Edge list must be sorted canonically for EdgeRelations; sort with rels.
  std::vector<std::size_t> order(edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&edges](std::size_t a, std::size_t b) { return edges[a] < edges[b]; });
  std::vector<Edge> edges_sorted(edges.size());
  std::vector<EdgeRel> rels_sorted(rels.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    edges_sorted[i] = edges[order[i]];
    rels_sorted[i] = rels[order[i]];
  }
  topo.relations = EdgeRelations(topo.graph, edges_sorted, rels_sorted);
  return topo;
}

InternetTopology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_topology_file: cannot open " + path);
  return load_topology(in);
}

}  // namespace bsr::topology
