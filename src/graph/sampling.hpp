// Deterministic sampling utilities used by the experiment harness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/rng.hpp"

namespace bsr::graph {

/// k distinct values from [0, n) via partial Fisher-Yates. Requires k <= n.
[[nodiscard]] std::vector<NodeId> sample_distinct(Rng& rng, NodeId n, NodeId k);

/// k distinct elements of `pool` (uniformly, without replacement).
[[nodiscard]] std::vector<NodeId> sample_from(Rng& rng, std::span<const NodeId> pool,
                                              std::size_t k);

/// In-place Fisher-Yates shuffle.
void shuffle(Rng& rng, std::vector<NodeId>& values);

/// Random (source != target) vertex pairs, with replacement across pairs.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> sample_pairs(Rng& rng, NodeId n,
                                                                  std::size_t count);

}  // namespace bsr::graph
