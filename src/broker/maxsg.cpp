#include "broker/maxsg.hpp"

#include <algorithm>
#include <stdexcept>

#include "broker/coverage.hpp"
#include "graph/components.hpp"
#include "graph/engine.hpp"
#include "graph/union_find.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::UnionFind;

MaxSgResult maxsg(const CsrGraph& g, std::uint32_t k, const MaxSgOptions& options) {
  BSR_SPAN("broker.maxsg");
  const NodeId n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("maxsg: empty graph");

  MaxSgResult result;
  result.brokers = BrokerSet(n);
  if (k == 0) return result;

  // Size of the graph's largest (unrestricted) component — the ceiling the
  // dominated component can reach; used for early stopping.
  const std::uint32_t reachable_ceiling =
      bsr::graph::connected_components(g).largest_size();

  UnionFind uf(n);  // components of the dominated subgraph G_B
  std::vector<bool> is_broker(n, false);
  std::uint32_t largest = 0;

  // Per-round snapshot of the union-find: no unions happen during a sweep,
  // so root/size lookups can be flat array loads instead of find() chains —
  // a candidate's gain costs two independent loads per edge.
  std::vector<NodeId> root_of(n);
  std::vector<std::uint32_t> size_of(n);

  // Stamp-based root dedup: O(deg) per candidate even for 5,000-degree hubs
  // (a scan-based dedup would be O(deg²) there).
  std::vector<std::uint32_t> root_stamp(n, 0);
  std::uint32_t epoch = 0;

  const auto candidate_gain = [&](NodeId w) -> std::uint32_t {
    ++epoch;
    std::uint32_t merged = 0;
    const NodeId rw = root_of[w];
    root_stamp[rw] = epoch;
    merged += size_of[rw];
    for (const NodeId v : g.neighbors(w)) {
      const NodeId r = root_of[v];
      if (root_stamp[r] != epoch) {
        root_stamp[r] = epoch;
        merged += size_of[r];
      }
    }
    return merged;
  };

  while (result.brokers.size() < k) {
    BSR_COUNT(MaxsgRounds);
    for (NodeId v = 0; v < n; ++v) root_of[v] = uf.find(v);
    for (NodeId v = 0; v < n; ++v) {
      if (root_of[v] == v) size_of[v] = uf.root_size(v);
    }
    // Full sweep: find the candidate whose activation yields the largest
    // merged dominated component. Deterministic tie-break: lowest id.
    NodeId best_vertex = bsr::graph::kUnreachable;
    std::uint32_t best_gain = 0;
    for (NodeId w = 0; w < n; ++w) {
      if (is_broker[w]) continue;
      const std::uint32_t gain = candidate_gain(w);
      if (gain > best_gain) {
        best_gain = gain;
        best_vertex = w;
      }
    }
    // Every non-broker vertex is evaluated exactly once per sweep, so the
    // eval count needs no in-loop accumulator (which would cost a register
    // in the hottest loop of the selection layer).
    BSR_COUNT_N(MaxsgGainEvals, n - result.brokers.size());
    if (best_vertex == bsr::graph::kUnreachable) break;

    is_broker[best_vertex] = true;
    result.brokers.add(best_vertex);
    bsr::graph::engine::unite_star(g, uf, best_vertex, bsr::graph::engine::AllEdges{});
    largest = std::max(largest, uf.component_size(best_vertex));
    result.component_curve.push_back(largest);

    if (options.stop_when_dominating && largest >= reachable_ceiling) break;
  }

  result.final_component = largest;
  result.coverage = coverage(g, result.brokers);
  return result;
}

}  // namespace bsr::broker
