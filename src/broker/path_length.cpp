#include "broker/path_length.hpp"

#include "graph/sampling.hpp"

namespace bsr::broker {

using bsr::graph::CsrGraph;
using bsr::graph::NodeId;
using bsr::graph::Rng;

PathLengthComparison compare_path_lengths(const CsrGraph& g, const BrokerSet& b,
                                          Rng& rng, std::size_t num_sources) {
  std::vector<NodeId> sources;
  if (num_sources >= g.num_vertices()) {
    sources.resize(g.num_vertices());
    for (NodeId v = 0; v < g.num_vertices(); ++v) sources[v] = v;
  } else {
    sources = bsr::graph::sample_distinct(rng, g.num_vertices(),
                                          static_cast<NodeId>(num_sources));
  }
  return compare_path_lengths(g, b, sources);
}

PathLengthComparison compare_path_lengths(const CsrGraph& g, const BrokerSet& b,
                                          std::span<const NodeId> sources) {
  PathLengthComparison out;
  out.free_paths = bsr::graph::distance_cdf_from_sources(g, sources);
  out.dominated_paths =
      bsr::graph::distance_cdf_from_sources(g, sources, dominated_edge_filter(b));
  out.max_deviation = bsr::graph::max_cdf_deviation(out.free_paths, out.dominated_paths);
  return out;
}

}  // namespace bsr::broker
