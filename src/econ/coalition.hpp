// Coalition characteristic functions grounded in the topology (§7.2).
//
// The value of a broker coalition K is driven by the E2E connectivity it can
// sell: U(K) = revenue_per_connectivity · saturated_connectivity(G, K)
//            - operating_cost · |K|.
// Saturated connectivity is supermodular-ish while the coalition is small
// (merging components multiplies reachable pairs — "network externality")
// and flattens once the giant dominated component is assembled, which is
// exactly the paper's argument for when coalition growth should stop.
#pragma once

#include <cstdint>
#include <span>

#include "broker/broker_set.hpp"
#include "econ/shapley.hpp"
#include "graph/csr_graph.hpp"

namespace bsr::econ {

struct CoalitionParams {
  double revenue_per_connectivity = 100.0;  // scales the connectivity term
  double operating_cost = 0.05;             // per-member running cost
};

/// A cooperative game whose players are candidate brokers on a graph.
class CoalitionGame {
 public:
  /// `players` are vertex ids; at most 63 players (bitmask-encoded
  /// coalitions). Throws std::invalid_argument on bad input.
  CoalitionGame(const bsr::graph::CsrGraph& g,
                std::span<const bsr::graph::NodeId> players, CoalitionParams params);

  [[nodiscard]] std::size_t num_players() const noexcept { return players_.size(); }

  /// U(mask): coalition value. U(0) = 0 by construction.
  [[nodiscard]] double value(std::uint64_t mask) const;

  /// Adapter for the Shapley solvers.
  [[nodiscard]] CharacteristicFn characteristic() const;

 private:
  const bsr::graph::CsrGraph* graph_;
  std::vector<bsr::graph::NodeId> players_;
  CoalitionParams params_;
};

}  // namespace bsr::econ
