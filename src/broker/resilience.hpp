// Failure injection and repair for broker sets (systems extension).
//
// A deployed brokerage coalition must survive churn: brokers de-peer, fail,
// or leave the coalition. This module measures how connectivity degrades
// under random and targeted broker failures and how well a greedy repair
// (re-running selection over the survivors' gaps) restores it. The paper
// leaves deployment dynamics as future work; these are the experiments a
// production operator would ask for first.
//
// Beyond whole-broker failures, the link-level API measures degradation
// under *edge* faults — single fiber cuts and correlated outages (an IXP
// failing drops every membership edge at once) — via graph::FaultPlane,
// and repairs the coalition on the damaged graph.
#pragma once

#include <cstdint>

#include "broker/broker_set.hpp"
#include "graph/csr_graph.hpp"
#include "graph/fault_plane.hpp"
#include "graph/rng.hpp"

namespace bsr::broker {

enum class FailureMode : std::uint8_t {
  kRandom,       // uniformly random broker failures
  kTargetedTop,  // adversarial: fail the highest-degree brokers first
};

/// Removes `failures` brokers from `b` per the mode; returns the survivors
/// (selection order preserved). failures >= |b| yields an empty set.
[[nodiscard]] BrokerSet fail_brokers(const bsr::graph::CsrGraph& g, const BrokerSet& b,
                                     std::size_t failures, FailureMode mode,
                                     bsr::graph::Rng& rng);

struct ResilienceCurve {
  std::vector<std::size_t> failures;     // x axis
  std::vector<double> connectivity;      // saturated connectivity after failure
};

/// Sweeps failure counts and records the post-failure connectivity.
[[nodiscard]] ResilienceCurve resilience_curve(const bsr::graph::CsrGraph& g,
                                               const BrokerSet& b,
                                               std::span<const std::size_t> failure_steps,
                                               FailureMode mode, bsr::graph::Rng& rng);

/// Correlated-group resilience sweep: shuffles `groups` deterministically in
/// `rng`, then for each step s fails the first min(s, |groups|) groups on a
/// FaultPlane and records the damaged dominated connectivity. The `failures`
/// axis counts failed *groups*. Nested prefixes, so the curve is
/// non-increasing — the correlated analogue of the independent
/// broker-failure sweep above.
[[nodiscard]] ResilienceCurve resilience_curve(
    const bsr::graph::CsrGraph& g, const BrokerSet& b,
    std::span<const bsr::graph::FailureGroup> groups,
    std::span<const std::size_t> steps, bsr::graph::Rng& rng);

/// Greedy repair: adds up to `budget` replacement brokers (chosen by the
/// MaxSG criterion over the survivors) and returns the repaired set.
[[nodiscard]] BrokerSet repair_brokers(const bsr::graph::CsrGraph& g,
                                       const BrokerSet& survivors,
                                       std::uint32_t budget);

/// Greedy repair on a *damaged* graph: identical criterion, but component
/// gains count only edges the fault plane reports usable, and down vertices
/// are never selected. The plane must be bound to `g`.
[[nodiscard]] BrokerSet repair_brokers(const bsr::graph::CsrGraph& g,
                                       const BrokerSet& survivors,
                                       std::uint32_t budget,
                                       const bsr::graph::FaultPlane& faults);

// --- link-level resilience -------------------------------------------------

struct LinkResiliencePoint {
  std::size_t failed_groups = 0;       // correlated groups down at this step
  std::uint64_t failed_edges = 0;      // distinct edges down at this step
  double connectivity = 0.0;           // damaged dominated connectivity
  double repaired_connectivity = 0.0;  // after greedy repair on the damage
};

struct LinkResilienceCurve {
  std::vector<LinkResiliencePoint> points;
};

/// Link-failure resilience sweep. Shuffles `groups` deterministically in
/// `rng`, then for each step s fails the first min(s, |groups|) groups,
/// records the dominated connectivity of the damaged graph, and repairs the
/// survivors with `repair_budget` replacements chosen on the damaged graph.
[[nodiscard]] LinkResilienceCurve link_resilience_curve(
    const bsr::graph::CsrGraph& g, const BrokerSet& b,
    std::span<const bsr::graph::FailureGroup> groups,
    std::span<const std::size_t> steps, std::uint32_t repair_budget,
    bsr::graph::Rng& rng);

/// `count` distinct uniformly random edges as singleton failure groups —
/// the uncorrelated single-link baseline. count is clamped to |E|.
[[nodiscard]] std::vector<bsr::graph::FailureGroup> random_link_groups(
    const bsr::graph::CsrGraph& g, std::size_t count, bsr::graph::Rng& rng);

}  // namespace bsr::broker
