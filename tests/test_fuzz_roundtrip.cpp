// Fuzz-style round-trip tests over randomized instances.
//
// Serialization, edge-list IO and EdgeRelations must survive arbitrary
// generator outputs, not just the default configuration. Each TEST_P draws
// a differently-shaped topology (size, tail, IXP ecosystem all varying with
// the seed) and pushes it through every persistence path.
#include <gtest/gtest.h>

#include <sstream>

#include "io/edge_list_io.hpp"
#include "topology/serialization.hpp"

namespace bsr {
namespace {

using bsr::graph::NodeId;

topology::InternetConfig fuzz_config(std::uint64_t seed) {
  bsr::graph::Rng rng(seed);
  auto cfg = topology::InternetConfig{}.scaled(0.004 + 0.02 * rng.uniform01());
  cfg.seed = seed;
  cfg.remote_fraction = 0.15 * rng.uniform01();
  cfg.isolated_fraction = 0.02 * rng.uniform01();
  cfg.ixp_participation = 0.2 + 0.5 * rng.uniform01();
  cfg.stub_content_fraction = 0.3 * rng.uniform01();
  cfg.stub_transit_fraction = 0.2 * rng.uniform01();
  return cfg;
}

class FuzzRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRoundTripTest, TopologySerializationRoundTrips) {
  const auto topo = topology::make_internet(fuzz_config(GetParam()));
  std::ostringstream oss;
  topology::save_topology(oss, topo);
  std::istringstream iss(oss.str());
  const auto loaded = topology::load_topology(iss);
  EXPECT_EQ(loaded.graph.edges(), topo.graph.edges());
  EXPECT_EQ(loaded.num_ases, topo.num_ases);
  // Relationship labels survive for a sample of edges.
  const auto edges = topo.graph.edges();
  for (std::size_t i = 0; i < edges.size(); i += 97) {
    EXPECT_EQ(loaded.relations.rel_canonical(edges[i].u, edges[i].v),
              topo.relations.rel_canonical(edges[i].u, edges[i].v));
  }
}

TEST_P(FuzzRoundTripTest, EdgeListRoundTrips) {
  const auto topo = topology::make_internet(fuzz_config(GetParam() + 500));
  std::ostringstream oss;
  io::write_edge_list(oss, topo.graph);
  std::istringstream iss(oss.str());
  const auto loaded = io::read_edge_list(iss);
  // Isolated vertices are dropped by the edge-list format (no lines), so
  // compare edge sets after compaction, not vertex counts.
  EXPECT_EQ(loaded.num_edges(), topo.graph.num_edges());
}

TEST_P(FuzzRoundTripTest, GeneratorInvariantsHold) {
  const auto cfg = fuzz_config(GetParam() + 900);
  const auto topo = topology::make_internet(cfg);
  EXPECT_EQ(topo.num_vertices(), cfg.num_ases + cfg.num_ixps);
  // IXPs only peer, and only with ASes.
  for (NodeId ixp = topo.num_ases; ixp < topo.num_vertices(); ++ixp) {
    for (const NodeId m : topo.graph.neighbors(ixp)) {
      ASSERT_LT(m, topo.num_ases);
      ASSERT_TRUE(topo.relations.is_peer(ixp, m));
    }
  }
  // Relationship labels are total: every edge answers queries both ways.
  const auto edges = topo.graph.edges();
  for (std::size_t i = 0; i < edges.size(); i += 131) {
    const auto rel = topo.relations.rel_canonical(edges[i].u, edges[i].v);
    if (rel != topology::EdgeRel::kPeer) {
      EXPECT_NE(topo.relations.is_provider_of(edges[i].u, edges[i].v),
                topo.relations.is_provider_of(edges[i].v, edges[i].u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRoundTripTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005, 6006,
                                           7007, 8008));

}  // namespace
}  // namespace bsr
