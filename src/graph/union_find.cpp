#include "graph/union_find.hpp"

#include <numeric>

namespace bsr::graph {

UnionFind::UnionFind(NodeId n) { reset(n); }

void UnionFind::reset(NodeId n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), NodeId{0});
  size_.assign(n, 1);
  num_components_ = n;
}

NodeId UnionFind::find(NodeId v) noexcept {
  BSR_DCHECK(v < parent_.size());
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(NodeId u, NodeId v) noexcept {
  NodeId ru = find(u);
  NodeId rv = find(v);
  if (ru == rv) return false;
  if (size_[ru] < size_[rv]) std::swap(ru, rv);
  parent_[rv] = ru;
  size_[ru] += size_[rv];
  --num_components_;
  return true;
}

}  // namespace bsr::graph
