#include "econ/dynamics.hpp"

#include <gtest/gtest.h>

namespace bsr::econ {
namespace {

StackelbergConfig small_game() {
  StackelbergConfig game;
  for (int i = 0; i < 25; ++i) {
    CustomerParams c;
    c.v_scale = 0.7 + 0.02 * i;
    c.a0 = 0.05;
    c.a_hat = 0.5;
    c.p_peak = 0.2;
    game.customers.push_back(c);
  }
  return game;
}

TEST(Dynamics, ConvergesToStackelbergEquilibrium) {
  const auto game = small_game();
  const auto equilibrium = solve_stackelberg(game);
  const auto dynamics = best_response_dynamics(game);
  ASSERT_TRUE(dynamics.converged);
  EXPECT_NEAR(dynamics.final_price, equilibrium.price, 1e-2);
  EXPECT_NEAR(dynamics.final_adoption, equilibrium.total_adoption, 1e-2);
}

TEST(Dynamics, PathsRecorded) {
  const auto dynamics = best_response_dynamics(small_game());
  ASSERT_GT(dynamics.rounds, 1u);
  EXPECT_EQ(dynamics.price_path.size(), dynamics.rounds);
  EXPECT_EQ(dynamics.adoption_path.size(), dynamics.rounds);
  EXPECT_DOUBLE_EQ(dynamics.price_path.front(), DynamicsConfig{}.initial_price);
}

TEST(Dynamics, MonotoneApproachUnderDamping) {
  // With damping toward a fixed target, the price moves monotonically.
  const auto dynamics = best_response_dynamics(small_game());
  for (std::size_t i = 1; i < dynamics.price_path.size(); ++i) {
    EXPECT_GE(dynamics.price_path[i] + 1e-12, dynamics.price_path[i - 1]);
  }
}

TEST(Dynamics, FullStepJumpsImmediately) {
  DynamicsConfig config;
  config.step = 1.0;
  const auto dynamics = best_response_dynamics(small_game(), config);
  EXPECT_TRUE(dynamics.converged);
  EXPECT_LE(dynamics.rounds, 3u);
}

TEST(Dynamics, SmallStepConvergesSlower) {
  DynamicsConfig fast, slow;
  fast.step = 0.8;
  slow.step = 0.05;
  slow.max_rounds = 1000;  // (1 - 0.05)^n decay needs ~450 rounds for 1e-6
  const auto a = best_response_dynamics(small_game(), fast);
  const auto b = best_response_dynamics(small_game(), slow);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_LT(a.rounds, b.rounds);
}

TEST(Dynamics, RejectsBadConfig) {
  DynamicsConfig bad_step;
  bad_step.step = 0.0;
  EXPECT_THROW(best_response_dynamics(small_game(), bad_step),
               std::invalid_argument);
  DynamicsConfig no_rounds;
  no_rounds.max_rounds = 0;
  EXPECT_THROW(best_response_dynamics(small_game(), no_rounds),
               std::invalid_argument);
  EXPECT_THROW(best_response_dynamics(StackelbergConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace bsr::econ
